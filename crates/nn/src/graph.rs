//! Reverse-mode automatic differentiation over [`Array`] nodes.
//!
//! A [`Graph`] is rebuilt per forward pass (define-by-run). Parameters are
//! copied in from a [`ParamStore`]; after `backward`, their gradients are
//! accumulated back into the store.

use crate::array::Array;
use crate::params::{ParamId, ParamStore};

/// Index of a node within a [`Graph`].
pub type NodeId = usize;

enum Op {
    Leaf,
    Param(ParamId),
    MatMul(NodeId, NodeId),
    /// `x[n,d] + bias[1,d]` broadcast over rows.
    AddRow(NodeId, NodeId),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Mul(NodeId, NodeId),
    Scale(NodeId, f64),
    AddConst(NodeId),
    Tanh(NodeId),
    Sigmoid(NodeId),
    LRelu(NodeId, f64),
    Exp(NodeId),
    /// ln(max(x, floor)).
    Ln(NodeId, f64),
    /// Mean over all elements -> 1x1.
    Mean(NodeId),
    ConcatCols(NodeId, NodeId),
    SliceCols(NodeId, usize, usize),
    /// Row-wise layer normalisation with gain/bias [1,d].
    LayerNorm {
        x: NodeId,
        gain: NodeId,
        bias: NodeId,
        eps: f64,
    },
    /// Log-probability of a scalar action under a Gaussian mixture.
    /// means/log_stds/logits are `[n,K]`; action is a leaf `[n,1]`; out `[n,1]`.
    GmmLogProb {
        means: NodeId,
        log_stds: NodeId,
        logits: NodeId,
        action: NodeId,
    },
    /// Per-row cross-entropy of softmax(logits) against target probs `[n,A] -> [n,1]`.
    SoftmaxCE {
        logits: NodeId,
        target: NodeId,
    },
}

struct Node {
    val: Array,
    op: Op,
}

/// A define-by-run computation graph.
pub struct Graph {
    nodes: Vec<Node>,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl Graph {
    pub fn new() -> Self {
        Graph { nodes: Vec::new() }
    }

    fn push(&mut self, val: Array, op: Op) -> NodeId {
        self.nodes.push(Node { val, op });
        self.nodes.len() - 1
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Array {
        &self.nodes[id].val
    }

    /// Non-differentiable input.
    pub fn input(&mut self, a: Array) -> NodeId {
        self.push(a, Op::Leaf)
    }

    /// Differentiable parameter (value copied from the store).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> NodeId {
        self.push(store.get(id).clone(), Op::Param(id))
    }

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].val.matmul(&self.nodes[b].val);
        self.push(v, Op::MatMul(a, b))
    }

    /// Broadcast-add a `[1,d]` bias row to every row of x.
    pub fn add_row(&mut self, x: NodeId, bias: NodeId) -> NodeId {
        let xv = &self.nodes[x].val;
        let bv = &self.nodes[bias].val;
        assert_eq!(bv.rows, 1);
        assert_eq!(xv.cols, bv.cols);
        let mut out = xv.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                *out.at_mut(r, c) += bv.at(0, c);
            }
        }
        self.push(out, Op::AddRow(x, bias))
    }

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].val.zip(&self.nodes[b].val, |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].val.zip(&self.nodes[b].val, |x, y| x - y);
        self.push(v, Op::Sub(a, b))
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].val.zip(&self.nodes[b].val, |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    pub fn scale(&mut self, a: NodeId, k: f64) -> NodeId {
        let v = self.nodes[a].val.map(|x| x * k);
        self.push(v, Op::Scale(a, k))
    }

    pub fn add_const(&mut self, a: NodeId, k: f64) -> NodeId {
        let v = self.nodes[a].val.map(|x| x + k);
        self.push(v, Op::AddConst(a))
    }

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].val.map(f64::tanh);
        self.push(v, Op::Tanh(a))
    }

    pub fn sigmoid(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].val.map(|x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a))
    }

    /// Leaky ReLU with the given negative slope.
    pub fn lrelu(&mut self, a: NodeId, slope: f64) -> NodeId {
        let v = self.nodes[a]
            .val
            .map(|x| if x >= 0.0 { x } else { slope * x });
        self.push(v, Op::LRelu(a, slope))
    }

    pub fn exp(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].val.map(f64::exp);
        self.push(v, Op::Exp(a))
    }

    /// Natural log with a numeric floor.
    pub fn ln(&mut self, a: NodeId, floor: f64) -> NodeId {
        let v = self.nodes[a].val.map(|x| x.max(floor).ln());
        self.push(v, Op::Ln(a, floor))
    }

    /// Mean over all elements, yielding a 1x1 scalar.
    pub fn mean(&mut self, a: NodeId) -> NodeId {
        let av = &self.nodes[a].val;
        let m = av.data.iter().sum::<f64>() / av.data.len() as f64;
        self.push(Array::scalar(m), Op::Mean(a))
    }

    pub fn concat_cols(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let (av, bv) = (&self.nodes[a].val, &self.nodes[b].val);
        assert_eq!(av.rows, bv.rows);
        let mut out = Array::zeros(av.rows, av.cols + bv.cols);
        for r in 0..av.rows {
            for c in 0..av.cols {
                *out.at_mut(r, c) = av.at(r, c);
            }
            for c in 0..bv.cols {
                *out.at_mut(r, av.cols + c) = bv.at(r, c);
            }
        }
        self.push(out, Op::ConcatCols(a, b))
    }

    /// Columns `[from, to)` of a node.
    pub fn slice_cols(&mut self, a: NodeId, from: usize, to: usize) -> NodeId {
        let av = &self.nodes[a].val;
        assert!(from < to && to <= av.cols);
        let mut out = Array::zeros(av.rows, to - from);
        for r in 0..av.rows {
            for c in from..to {
                *out.at_mut(r, c - from) = av.at(r, c);
            }
        }
        self.push(out, Op::SliceCols(a, from, to))
    }

    /// Row-wise layer normalisation with learned gain and bias (`[1,d]`).
    pub fn layer_norm(&mut self, x: NodeId, gain: NodeId, bias: NodeId) -> NodeId {
        let eps = 1e-5;
        let xv = &self.nodes[x].val;
        let g = &self.nodes[gain].val;
        let b = &self.nodes[bias].val;
        let d = xv.cols;
        let mut out = Array::zeros(xv.rows, d);
        for r in 0..xv.rows {
            let row = &xv.data[r * d..(r + 1) * d];
            let mu = row.iter().sum::<f64>() / d as f64;
            let var = row.iter().map(|&x| (x - mu) * (x - mu)).sum::<f64>() / d as f64;
            let sd = (var + eps).sqrt();
            for (c, &x) in row.iter().enumerate() {
                let xhat = (x - mu) / sd;
                *out.at_mut(r, c) = g.at(0, c) * xhat + b.at(0, c);
            }
        }
        self.push(out, Op::LayerNorm { x, gain, bias, eps })
    }

    /// Log-probability of scalar actions under a Gaussian mixture whose
    /// parameters are per-row: `means`/`log_stds`/`logits` are `[n,K]`;
    /// `action` is `[n,1]`. Returns `[n,1]`.
    pub fn gmm_log_prob(
        &mut self,
        means: NodeId,
        log_stds: NodeId,
        logits: NodeId,
        action: NodeId,
    ) -> NodeId {
        let (mv, sv, wv, av) = (
            &self.nodes[means].val,
            &self.nodes[log_stds].val,
            &self.nodes[logits].val,
            &self.nodes[action].val,
        );
        let (n, k) = mv.shape();
        assert_eq!(sv.shape(), (n, k));
        assert_eq!(wv.shape(), (n, k));
        assert_eq!(av.shape(), (n, 1));
        let mut out = Array::zeros(n, 1);
        for r in 0..n {
            out.data[r] = gmm_row_logp(
                &mv.data[r * k..(r + 1) * k],
                &sv.data[r * k..(r + 1) * k],
                &wv.data[r * k..(r + 1) * k],
                av.data[r],
            )
            .0;
        }
        self.push(
            out,
            Op::GmmLogProb {
                means,
                log_stds,
                logits,
                action,
            },
        )
    }

    /// Cross-entropy per row of softmax(logits) against target probabilities.
    pub fn softmax_cross_entropy(&mut self, logits: NodeId, target: NodeId) -> NodeId {
        let (lv, tv) = (&self.nodes[logits].val, &self.nodes[target].val);
        assert_eq!(lv.shape(), tv.shape());
        let (n, a) = lv.shape();
        let mut out = Array::zeros(n, 1);
        for r in 0..n {
            let row = &lv.data[r * a..(r + 1) * a];
            let lse = log_sum_exp(row);
            let mut ce = 0.0;
            for (c, &l) in row.iter().enumerate() {
                let logp = l - lse;
                ce -= tv.at(r, c) * logp;
            }
            out.data[r] = ce;
        }
        self.push(out, Op::SoftmaxCE { logits, target })
    }

    /// Run backpropagation from `loss` (must be 1x1) and accumulate parameter
    /// gradients into `store`.
    pub fn backward(&self, loss: NodeId, store: &mut ParamStore) {
        let grads = self.node_grads(loss);
        for (i, node) in self.nodes.iter().enumerate() {
            if let (Op::Param(pid), Some(g)) = (&node.op, &grads[i]) {
                store.params[*pid].grad.add_assign(g);
            }
        }
    }

    /// Parameter gradients of `loss` (must be 1x1) as `(id, grad)` pairs in
    /// graph-node order, without touching a store. A parameter referenced by
    /// several nodes (e.g. shared GRU weights across an unroll) appears once
    /// per reference; adding the pairs in order reproduces exactly what
    /// [`Graph::backward`] would have accumulated. This is the building block
    /// for parallel per-sample gradients: workers only need `&self` and the
    /// reducer owns the single mutable store.
    pub fn param_grads(&self, loss: NodeId) -> Vec<(ParamId, Array)> {
        let mut grads = self.node_grads(loss);
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Op::Param(pid) = &node.op {
                if let Some(g) = grads[i].take() {
                    out.push((*pid, g));
                }
            }
        }
        out
    }

    /// Gradient of `loss` w.r.t. every node (None if unreached).
    fn node_grads(&self, loss: NodeId) -> Vec<Option<Array>> {
        assert_eq!(self.nodes[loss].val.shape(), (1, 1), "loss must be scalar");
        let mut grads: Vec<Option<Array>> = vec![None; self.nodes.len()];
        grads[loss] = Some(Array::scalar(1.0));
        for i in (0..self.nodes.len()).rev() {
            let g = match grads[i].take() {
                Some(g) => g,
                None => continue,
            };
            self.backprop_node(i, &g, &mut grads);
            grads[i] = Some(g);
        }
        grads
    }

    fn accumulate(grads: &mut [Option<Array>], id: NodeId, g: Array) {
        match &mut grads[id] {
            Some(existing) => existing.add_assign(&g),
            slot @ None => *slot = Some(g),
        }
    }

    fn backprop_node(&self, i: NodeId, g: &Array, grads: &mut [Option<Array>]) {
        match &self.nodes[i].op {
            Op::Leaf | Op::Param(_) => {}
            Op::MatMul(a, b) => {
                let da = g.matmul(&self.nodes[*b].val.t());
                let db = self.nodes[*a].val.t().matmul(g);
                Self::accumulate(grads, *a, da);
                Self::accumulate(grads, *b, db);
            }
            Op::AddRow(x, bias) => {
                Self::accumulate(grads, *x, g.clone());
                // Bias gradient: sum over rows.
                let mut db = Array::zeros(1, g.cols);
                for r in 0..g.rows {
                    for c in 0..g.cols {
                        db.data[c] += g.at(r, c);
                    }
                }
                Self::accumulate(grads, *bias, db);
            }
            Op::Add(a, b) => {
                Self::accumulate(grads, *a, g.clone());
                Self::accumulate(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                Self::accumulate(grads, *a, g.clone());
                Self::accumulate(grads, *b, g.map(|x| -x));
            }
            Op::Mul(a, b) => {
                let da = g.zip(&self.nodes[*b].val, |gg, bb| gg * bb);
                let db = g.zip(&self.nodes[*a].val, |gg, aa| gg * aa);
                Self::accumulate(grads, *a, da);
                Self::accumulate(grads, *b, db);
            }
            Op::Scale(a, k) => Self::accumulate(grads, *a, g.map(|x| x * k)),
            Op::AddConst(a) => Self::accumulate(grads, *a, g.clone()),
            Op::Tanh(a) => {
                let y = &self.nodes[i].val;
                Self::accumulate(grads, *a, g.zip(y, |gg, yy| gg * (1.0 - yy * yy)));
            }
            Op::Sigmoid(a) => {
                let y = &self.nodes[i].val;
                Self::accumulate(grads, *a, g.zip(y, |gg, yy| gg * yy * (1.0 - yy)));
            }
            Op::LRelu(a, slope) => {
                let x = &self.nodes[*a].val;
                Self::accumulate(
                    grads,
                    *a,
                    g.zip(x, |gg, xx| if xx >= 0.0 { gg } else { gg * slope }),
                );
            }
            Op::Exp(a) => {
                let y = &self.nodes[i].val;
                Self::accumulate(grads, *a, g.zip(y, |gg, yy| gg * yy));
            }
            Op::Ln(a, floor) => {
                let x = &self.nodes[*a].val;
                Self::accumulate(
                    grads,
                    *a,
                    g.zip(x, |gg, xx| if xx > *floor { gg / xx } else { 0.0 }),
                );
            }
            Op::Mean(a) => {
                let n = self.nodes[*a].val.data.len() as f64;
                let scale = g.data[0] / n;
                let da = self.nodes[*a].val.map(|_| scale);
                Self::accumulate(grads, *a, da);
            }
            Op::ConcatCols(a, b) => {
                let ac = self.nodes[*a].val.cols;
                let bc = self.nodes[*b].val.cols;
                let mut da = Array::zeros(g.rows, ac);
                let mut db = Array::zeros(g.rows, bc);
                for r in 0..g.rows {
                    for c in 0..ac {
                        *da.at_mut(r, c) = g.at(r, c);
                    }
                    for c in 0..bc {
                        *db.at_mut(r, c) = g.at(r, ac + c);
                    }
                }
                Self::accumulate(grads, *a, da);
                Self::accumulate(grads, *b, db);
            }
            Op::SliceCols(a, from, _to) => {
                let av = &self.nodes[*a].val;
                let mut da = Array::zeros(av.rows, av.cols);
                for r in 0..g.rows {
                    for c in 0..g.cols {
                        *da.at_mut(r, from + c) = g.at(r, c);
                    }
                }
                Self::accumulate(grads, *a, da);
            }
            Op::LayerNorm { x, gain, bias, eps } => {
                let xv = &self.nodes[*x].val;
                let gv = &self.nodes[*gain].val;
                let d = xv.cols;
                let mut dx = Array::zeros(xv.rows, d);
                let mut dgain = Array::zeros(1, d);
                let mut dbias = Array::zeros(1, d);
                for r in 0..xv.rows {
                    let row = &xv.data[r * d..(r + 1) * d];
                    let mu = row.iter().sum::<f64>() / d as f64;
                    let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f64>() / d as f64;
                    let sd = (var + eps).sqrt();
                    let xhat: Vec<f64> = row.iter().map(|&v| (v - mu) / sd).collect();
                    let dy = &g.data[r * d..(r + 1) * d];
                    let mut m1 = 0.0; // mean(dy*gain)
                    let mut m2 = 0.0; // mean(dy*gain*xhat)
                    for c in 0..d {
                        let dyg = dy[c] * gv.at(0, c);
                        m1 += dyg;
                        m2 += dyg * xhat[c];
                        dgain.data[c] += dy[c] * xhat[c];
                        dbias.data[c] += dy[c];
                    }
                    m1 /= d as f64;
                    m2 /= d as f64;
                    for c in 0..d {
                        let dyg = dy[c] * gv.at(0, c);
                        *dx.at_mut(r, c) = (dyg - m1 - xhat[c] * m2) / sd;
                    }
                }
                Self::accumulate(grads, *x, dx);
                Self::accumulate(grads, *gain, dgain);
                Self::accumulate(grads, *bias, dbias);
            }
            Op::GmmLogProb {
                means,
                log_stds,
                logits,
                action,
            } => {
                let mv = &self.nodes[*means].val;
                let sv = &self.nodes[*log_stds].val;
                let wv = &self.nodes[*logits].val;
                let av = &self.nodes[*action].val;
                let (n, k) = mv.shape();
                let mut dm = Array::zeros(n, k);
                let mut ds = Array::zeros(n, k);
                let mut dw = Array::zeros(n, k);
                for r in 0..n {
                    let gr = g.data[r];
                    let (_, resp, weights) = gmm_row_logp(
                        &mv.data[r * k..(r + 1) * k],
                        &sv.data[r * k..(r + 1) * k],
                        &wv.data[r * k..(r + 1) * k],
                        av.data[r],
                    );
                    for c in 0..k {
                        let mu = mv.at(r, c);
                        let sigma = sv.at(r, c).exp();
                        let z = (av.data[r] - mu) / sigma;
                        *dm.at_mut(r, c) = gr * resp[c] * z / sigma;
                        *ds.at_mut(r, c) = gr * resp[c] * (z * z - 1.0);
                        *dw.at_mut(r, c) = gr * (resp[c] - weights[c]);
                    }
                }
                Self::accumulate(grads, *means, dm);
                Self::accumulate(grads, *log_stds, ds);
                Self::accumulate(grads, *logits, dw);
            }
            Op::SoftmaxCE { logits, target } => {
                let lv = &self.nodes[*logits].val;
                let tv = &self.nodes[*target].val;
                let (n, a) = lv.shape();
                let mut dl = Array::zeros(n, a);
                for r in 0..n {
                    let gr = g.data[r];
                    let row = &lv.data[r * a..(r + 1) * a];
                    let lse = log_sum_exp(row);
                    // Sum of target probs (usually 1, but be exact).
                    let tsum: f64 = (0..a).map(|c| tv.at(r, c)).sum();
                    for (c, &l) in row.iter().enumerate() {
                        let p = (l - lse).exp();
                        *dl.at_mut(r, c) = gr * (tsum * p - tv.at(r, c));
                    }
                }
                Self::accumulate(grads, *logits, dl);
            }
        }
    }
}

/// Numerically stable log(sum(exp(xs))).
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + xs.iter().map(|&x| (x - m).exp()).sum::<f64>().ln()
}

const LOG_SQRT_2PI: f64 = 0.918_938_533_204_672_8;

/// Log-density of the mixture at `a`, plus component responsibilities and
/// softmax weights (for gradients).
fn gmm_row_logp(
    means: &[f64],
    log_stds: &[f64],
    logits: &[f64],
    a: f64,
) -> (f64, Vec<f64>, Vec<f64>) {
    let k = means.len();
    let logw_norm = log_sum_exp(logits);
    let mut joint = vec![0.0; k];
    let mut weights = vec![0.0; k];
    for c in 0..k {
        let logw = logits[c] - logw_norm;
        weights[c] = logw.exp();
        let sigma = log_stds[c].exp();
        let z = (a - means[c]) / sigma;
        let log_pdf = -0.5 * z * z - log_stds[c] - LOG_SQRT_2PI;
        joint[c] = logw + log_pdf;
    }
    let logp = log_sum_exp(&joint);
    let resp: Vec<f64> = joint.iter().map(|&j| (j - logp).exp()).collect();
    (logp, resp, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_util::Rng;

    /// Central finite-difference check of d loss / d param for every scalar
    /// in `store`, against autodiff.
    fn grad_check(
        store: &mut ParamStore,
        forward: &dyn Fn(&mut Graph, &ParamStore) -> NodeId,
        tol: f64,
    ) {
        // Autodiff gradients.
        store.zero_grads();
        let mut g = Graph::new();
        let loss = forward(&mut g, store);
        g.backward(loss, store);
        let auto_grads: Vec<Vec<f64>> = store.params.iter().map(|p| p.grad.data.clone()).collect();

        let h = 1e-6;
        // Index loops: each element of `store.params` is mutated in place for
        // the finite-difference probe while `auto_grads` is read at the same
        // (pi, ei) position; iterators cannot hold both borrows.
        #[allow(clippy::needless_range_loop)]
        for pi in 0..store.params.len() {
            for ei in 0..store.params[pi].value.data.len() {
                let orig = store.params[pi].value.data[ei];
                store.params[pi].value.data[ei] = orig + h;
                let mut g1 = Graph::new();
                let l1 = forward(&mut g1, store);
                let f1 = g1.value(l1).data[0];
                store.params[pi].value.data[ei] = orig - h;
                let mut g2 = Graph::new();
                let l2 = forward(&mut g2, store);
                let f2 = g2.value(l2).data[0];
                store.params[pi].value.data[ei] = orig;
                let fd = (f1 - f2) / (2.0 * h);
                let ad = auto_grads[pi][ei];
                assert!(
                    (fd - ad).abs() <= tol * (1.0 + fd.abs().max(ad.abs())),
                    "param {} elem {}: fd {} vs ad {}",
                    store.params[pi].name,
                    ei,
                    fd,
                    ad
                );
            }
        }
    }

    fn x_input(g: &mut Graph) -> NodeId {
        g.input(Array::from_vec(
            3,
            4,
            vec![
                0.5, -1.0, 2.0, 0.1, -0.3, 0.8, -1.5, 0.6, 1.2, -0.7, 0.4, -0.2,
            ],
        ))
    }

    #[test]
    fn grad_mlp_with_everything() {
        let mut rng = Rng::new(2);
        let mut store = ParamStore::new();
        let w1 = store.glorot("w1", 4, 5, &mut rng);
        let b1 = store.zeros("b1", 1, 5);
        let g1 = store.constant("g1", 1, 5, 1.0);
        let bb1 = store.zeros("bb1", 1, 5);
        let w2 = store.glorot("w2", 5, 1, &mut rng);
        grad_check(
            &mut store,
            &move |g, s| {
                let x = x_input(g);
                let wa = g.param(s, w1);
                let ba = g.param(s, b1);
                let h = g.matmul(x, wa);
                let h = g.add_row(h, ba);
                let ga = g.param(s, g1);
                let bba = g.param(s, bb1);
                let h = g.layer_norm(h, ga, bba);
                let h = g.lrelu(h, 0.01);
                let wb = g.param(s, w2);
                let y = g.matmul(h, wb);
                let y = g.tanh(y);
                g.mean(y)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_sigmoid_exp_ln_mul() {
        let mut rng = Rng::new(3);
        let mut store = ParamStore::new();
        let w = store.glorot("w", 4, 3, &mut rng);
        grad_check(
            &mut store,
            &move |g, s| {
                let x = x_input(g);
                let wa = g.param(s, w);
                let h = g.matmul(x, wa);
                let a = g.sigmoid(h);
                let b = g.exp(h);
                let c = g.mul(a, b);
                let c = g.add_const(c, 1.0);
                let c = g.ln(c, 1e-12);
                g.mean(c)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_concat_slice_sub_scale() {
        let mut rng = Rng::new(4);
        let mut store = ParamStore::new();
        let w = store.glorot("w", 4, 4, &mut rng);
        grad_check(
            &mut store,
            &move |g, s| {
                let x = x_input(g);
                let wa = g.param(s, w);
                let h = g.matmul(x, wa);
                let cat = g.concat_cols(h, x);
                let left = g.slice_cols(cat, 0, 4);
                let right = g.slice_cols(cat, 4, 8);
                let diff = g.sub(left, right);
                let sc = g.scale(diff, 0.5);
                let t = g.tanh(sc);
                g.mean(t)
            },
            1e-5,
        );
    }

    #[test]
    fn grad_gmm_log_prob() {
        let mut rng = Rng::new(5);
        let mut store = ParamStore::new();
        let wm = store.glorot("wm", 4, 3, &mut rng);
        let ws = store.glorot("ws", 4, 3, &mut rng);
        let ww = store.glorot("ww", 4, 3, &mut rng);
        grad_check(
            &mut store,
            &move |g, s| {
                let x = x_input(g);
                let m = g.param(s, wm);
                let sdev = g.param(s, ws);
                let w = g.param(s, ww);
                let means = g.matmul(x, m);
                let log_stds = g.matmul(x, sdev);
                let logits = g.matmul(x, w);
                let action = g.input(Array::from_vec(3, 1, vec![0.2, -0.4, 1.1]));
                let logp = g.gmm_log_prob(means, log_stds, logits, action);
                let neg = g.scale(logp, -1.0);
                g.mean(neg)
            },
            1e-4,
        );
    }

    #[test]
    fn grad_softmax_cross_entropy() {
        let mut rng = Rng::new(6);
        let mut store = ParamStore::new();
        let w = store.glorot("w", 4, 5, &mut rng);
        grad_check(
            &mut store,
            &move |g, s| {
                let x = x_input(g);
                let wa = g.param(s, w);
                let logits = g.matmul(x, wa);
                let target = g.input(Array::from_vec(
                    3,
                    5,
                    vec![
                        0.1, 0.2, 0.3, 0.2, 0.2, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.5, 0.5, 0.0, 0.0,
                    ],
                ));
                let ce = g.softmax_cross_entropy(logits, target);
                g.mean(ce)
            },
            1e-5,
        );
    }

    #[test]
    fn param_grads_match_backward_accumulation() {
        let mut rng = Rng::new(7);
        let mut store = ParamStore::new();
        let w = store.glorot("w", 4, 4, &mut rng);
        let b = store.zeros("b", 1, 4);
        let forward = |g: &mut Graph, s: &ParamStore| {
            let x = x_input(g);
            // Reference the same weight twice so param_grads must report it
            // once per use.
            let wa = g.param(s, w);
            let wb = g.param(s, w);
            let ba = g.param(s, b);
            let h = g.matmul(x, wa);
            let h = g.add_row(h, ba);
            let h = g.tanh(h);
            let y = g.matmul(h, wb);
            g.mean(y)
        };
        store.zero_grads();
        let mut g1 = Graph::new();
        let l1 = forward(&mut g1, &store);
        g1.backward(l1, &mut store);
        let reference: Vec<Vec<f64>> = store.params.iter().map(|p| p.grad.data.clone()).collect();

        let mut g2 = Graph::new();
        let l2 = forward(&mut g2, &store);
        let pairs = g2.param_grads(l2);
        assert!(pairs.iter().filter(|(pid, _)| *pid == w).count() == 2);
        store.zero_grads();
        for (pid, grad) in pairs {
            store.params[pid].grad.add_assign(&grad);
        }
        for (p, want) in store.params.iter().zip(&reference) {
            assert_eq!(&p.grad.data, want, "grad mismatch for {}", p.name);
        }
    }

    #[test]
    fn log_sum_exp_stable() {
        assert!((log_sum_exp(&[1000.0, 1000.0]) - (1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(
            log_sum_exp(&[f64::NEG_INFINITY, f64::NEG_INFINITY]),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn gmm_logp_matches_single_gaussian() {
        // One component: must equal the normal log-density.
        let (logp, resp, w) = gmm_row_logp(&[0.5], &[0.0], &[0.3], 1.0);
        let expected = -0.5 * 0.25 - 0.0 - LOG_SQRT_2PI;
        assert!((logp - expected).abs() < 1e-12);
        assert!((resp[0] - 1.0).abs() < 1e-12);
        assert!((w[0] - 1.0).abs() < 1e-12);
    }
}
