//! Dense row-major f64 matrices. Rows are batch entries, columns features.

/// A dense matrix (rows x cols), row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Array {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f64>,
}

impl Array {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Array {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Array { rows, cols, data }
    }

    /// A 1 x n row vector.
    pub fn row(data: Vec<f64>) -> Self {
        Array {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// A scalar 1 x 1.
    pub fn scalar(x: f64) -> Self {
        Array {
            rows: 1,
            cols: 1,
            data: vec![x],
        }
    }

    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Matrix product self (m x k) * other (k x n).
    pub fn matmul(&self, other: &Array) -> Array {
        assert_eq!(self.cols, other.rows, "matmul inner dims");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Array::zeros(m, n);
        for i in 0..m {
            for p in 0..k {
                let a = self.data[i * k + p];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[p * n..(p + 1) * n];
                let orow = &mut out.data[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += a * brow[j];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn t(&self) -> Array {
        let mut out = Array::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Array {
        Array {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise combine (shapes must match).
    pub fn zip(&self, other: &Array, f: impl Fn(f64, f64) -> f64) -> Array {
        assert_eq!(self.shape(), other.shape(), "zip shape");
        Array {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place accumulate.
    pub fn add_assign(&mut self, other: &Array) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Array::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Array::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Array::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.t().t(), a);
        assert_eq!(a.t().at(2, 1), 6.0);
    }

    #[test]
    fn zip_and_map() {
        let a = Array::row(vec![1.0, -2.0]);
        let b = Array::row(vec![3.0, 4.0]);
        assert_eq!(a.zip(&b, |x, y| x * y).data, vec![3.0, -8.0]);
        assert_eq!(a.map(f64::abs).data, vec![1.0, 2.0]);
    }
}
