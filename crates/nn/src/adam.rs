//! Adam optimiser (Kingma & Ba 2015) with global-norm gradient clipping.

use crate::params::ParamStore;

/// Adam state (the per-tensor moments live in the [`ParamStore`]).
#[derive(Debug, Clone, Copy)]
pub struct Adam {
    pub lr: f64,
    pub beta1: f64,
    pub beta2: f64,
    pub eps: f64,
    /// Clip gradients to this global L2 norm (0 disables clipping).
    pub clip_norm: f64,
    t: u64,
}

impl Adam {
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: 40.0,
            t: 0,
        }
    }

    /// Apply one update from the gradients accumulated in `store`, then zero
    /// them. Returns the (pre-clip) global gradient norm.
    pub fn step(&mut self, store: &mut ParamStore) -> f64 {
        self.t += 1;
        let mut sq = 0.0;
        for p in &store.params {
            sq += p.grad.data.iter().map(|g| g * g).sum::<f64>();
        }
        let norm = sq.sqrt();
        let scale = if self.clip_norm > 0.0 && norm > self.clip_norm {
            self.clip_norm / norm
        } else {
            1.0
        };
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in &mut store.params {
            for i in 0..p.value.data.len() {
                let g = p.grad.data[i] * scale;
                p.m.data[i] = self.beta1 * p.m.data[i] + (1.0 - self.beta1) * g;
                p.v.data[i] = self.beta2 * p.v.data[i] + (1.0 - self.beta2) * g * g;
                let mhat = p.m.data[i] / bc1;
                let vhat = p.v.data[i] / bc2;
                p.value.data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
        store.zero_grads();
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::graph::Graph;

    #[test]
    fn adam_minimises_a_quadratic() {
        // Minimise mean((w*x - y)^2) for scalar w: optimum w = 2.
        let mut store = ParamStore::new();
        let w = store.constant("w", 1, 1, -1.0);
        let mut opt = Adam::new(0.05);
        for _ in 0..500 {
            let mut g = Graph::new();
            let x = g.input(Array::row(vec![1.0]));
            let wa = g.param(&store, w);
            let pred = g.matmul(x, wa);
            let y = g.input(Array::row(vec![2.0]));
            let diff = g.sub(pred, y);
            let sq = g.mul(diff, diff);
            let loss = g.mean(sq);
            g.backward(loss, &mut store);
            opt.step(&mut store);
        }
        assert!((store.get(w).data[0] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn clipping_bounds_step() {
        let mut store = ParamStore::new();
        let w = store.constant("w", 1, 1, 0.0);
        store.params[w].grad.data[0] = 1e9;
        let mut opt = Adam::new(0.1);
        opt.clip_norm = 1.0;
        let norm = opt.step(&mut store);
        assert!(norm > 1e8);
        // With clipping the effective gradient was 1.0; Adam's first step is
        // lr-scaled regardless, but moments must be finite and small.
        assert!(store.params[w].m.data[0].abs() <= 0.11);
    }
}
