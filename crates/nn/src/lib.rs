//! A from-scratch neural-network substrate: dense f64 arrays, reverse-mode
//! automatic differentiation, the layers Sage's architecture needs (fully
//! connected, LayerNorm, GRU, residual blocks, a Gaussian-mixture policy head
//! and a categorical distributional critic head), and Adam.
//!
//! Why from scratch: the paper trains with TensorFlow/Acme on GPU clusters;
//! no ML framework is available offline here, and the network sizes involved
//! (tens of thousands of parameters at our scale) are comfortably handled by
//! a small, well-tested f64 engine. Every op's gradient is verified against
//! central finite differences in the test suite.

pub mod adam;
pub mod array;
pub mod gmm;
pub mod graph;
pub mod infer;
pub mod layers;
pub mod params;

pub use adam::Adam;
pub use array::Array;
pub use graph::{Graph, NodeId};
pub use params::{ParamId, ParamStore};
