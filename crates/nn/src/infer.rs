//! Graph-free forward kernels for the serving runtime.
//!
//! Training goes through [`crate::graph::Graph`], which clones every
//! parameter matrix into the tape and allocates ~60 nodes per forward —
//! fine for gradients, wasteful for serving. The helpers here compute the
//! same forward math directly on [`Array`]s.
//!
//! **Bit-identity contract**: every op mirrors its `graph.rs` counterpart
//! element-for-element, in the same evaluation order. All ops are
//! row-independent, so a batched forward over B rows equals B single-row
//! graph forwards bit-for-bit. The matmul has a runtime-dispatched SIMD
//! path (AVX-512F / AVX2) that preserves scalar semantics: separate
//! multiply and add per element (no FMA — fusing would change rounding),
//! vector lanes spread across output columns `j`, the inner `p` loop kept
//! sequential, and the same skip-zero shortcut as [`Array::matmul`].

use crate::array::Array;
use std::sync::OnceLock;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

fn kernel() -> Kernel {
    static KERNEL: OnceLock<Kernel> = OnceLock::new();
    *KERNEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                return Kernel::Avx512;
            }
            if is_x86_feature_detected!("avx2") {
                return Kernel::Avx2;
            }
        }
        Kernel::Scalar
    })
}

/// `a (m x k) * b (k x n)`, bit-identical to [`Array::matmul`].
// SAFETY-BOUNDARY: all unsafe SIMD dispatch is encapsulated here — kernels
// run only after `is_x86_feature_detected!` confirmed the target feature,
// and slice lengths are pinned by Array's rows*cols invariant, so no caller
// obligation escapes this fn.
pub fn matmul(a: &Array, b: &Array) -> Array {
    assert_eq!(a.cols, b.rows, "matmul inner dims");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut out = Array::zeros(m, n);
    match kernel() {
        // SAFETY: `kernel()` returned Avx512/Avx2 only after
        // `is_x86_feature_detected!` confirmed the target feature on this
        // CPU, satisfying each kernel's #[target_feature] precondition;
        // the slice-length preconditions (a = m*k, b = k*n, out = m*n)
        // hold by Array's invariant (data.len() == rows*cols) together
        // with the dimension checks above, and are re-asserted by the
        // debug_assert!s at each kernel entry.
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx512 => unsafe { matmul_avx512(&a.data, &b.data, &mut out.data, m, k, n) },
        // SAFETY: as above — feature presence checked at dispatch,
        // slice lengths guaranteed by Array's shape invariant.
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 => unsafe { matmul_avx2(&a.data, &b.data, &mut out.data, m, k, n) },
        Kernel::Scalar => matmul_scalar(&a.data, &b.data, &mut out.data, m, k, n),
    }
    out
}

fn matmul_scalar(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
}

// The SIMD kernels tile output columns into register-resident accumulator
// blocks (4 vectors, then 1 vector, then a scalar tail). Keeping the
// accumulators in registers across the whole `p` loop removes the
// store-to-load forwarding chain a read-modify-write output row would
// create — which is the difference between ~1.3x and ~4x over scalar on
// these small matrices. Every output element still accumulates over `p` in
// increasing order from 0.0 with separate mul/add and the skip-zero
// shortcut, so results stay bit-identical to [`Array::matmul`].

// SAFETY: callers must ensure (1) the CPU supports AVX-512F (enforced by
// the `kernel()` dispatch via `is_x86_feature_detected!`) and (2) the
// slice lengths match the dimensions: a.len() == m*k, b.len() == k*n,
// out.len() == m*n. Every pointer formed below stays in bounds under (2):
// `arow.add(p)` reads a[i*k + p] with i < m, p < k; `bp.add(q)` reads
// b[p*n + j + q] with j + q < n (each unrolled block loads at offsets
// j..j+32 only while j + 32 <= n); `orow.add(j)` writes out[i*n + j] with
// j < n. All loads/stores use the unaligned intrinsics (`loadu`/`storeu`),
// so no alignment precondition beyond f64's natural alignment (guaranteed
// by the slice type) is required.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn matmul_avx512(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), m * k, "matmul_avx512: lhs length");
    debug_assert_eq!(b.len(), k * n, "matmul_avx512: rhs length");
    debug_assert_eq!(out.len(), m * n, "matmul_avx512: out length");
    for i in 0..m {
        let arow = a.as_ptr().add(i * k);
        let orow = out.as_mut_ptr().add(i * n);
        let mut j = 0usize;
        while j + 32 <= n {
            let mut acc0 = _mm512_setzero_pd();
            let mut acc1 = _mm512_setzero_pd();
            let mut acc2 = _mm512_setzero_pd();
            let mut acc3 = _mm512_setzero_pd();
            for p in 0..k {
                let av = *arow.add(p);
                if av == 0.0 {
                    continue;
                }
                let vs = _mm512_set1_pd(av);
                let bp = b.as_ptr().add(p * n + j);
                acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(vs, _mm512_loadu_pd(bp)));
                acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(vs, _mm512_loadu_pd(bp.add(8))));
                acc2 = _mm512_add_pd(acc2, _mm512_mul_pd(vs, _mm512_loadu_pd(bp.add(16))));
                acc3 = _mm512_add_pd(acc3, _mm512_mul_pd(vs, _mm512_loadu_pd(bp.add(24))));
            }
            _mm512_storeu_pd(orow.add(j), acc0);
            _mm512_storeu_pd(orow.add(j + 8), acc1);
            _mm512_storeu_pd(orow.add(j + 16), acc2);
            _mm512_storeu_pd(orow.add(j + 24), acc3);
            j += 32;
        }
        while j + 8 <= n {
            let mut acc = _mm512_setzero_pd();
            for p in 0..k {
                let av = *arow.add(p);
                if av == 0.0 {
                    continue;
                }
                let vs = _mm512_set1_pd(av);
                acc = _mm512_add_pd(
                    acc,
                    _mm512_mul_pd(vs, _mm512_loadu_pd(b.as_ptr().add(p * n + j))),
                );
            }
            _mm512_storeu_pd(orow.add(j), acc);
            j += 8;
        }
        while j < n {
            let mut s = 0.0;
            for p in 0..k {
                let av = *arow.add(p);
                if av == 0.0 {
                    continue;
                }
                s += av * *b.as_ptr().add(p * n + j);
            }
            *orow.add(j) = s;
            j += 1;
        }
    }
}

// SAFETY: callers must ensure (1) the CPU supports AVX2 (enforced by the
// `kernel()` dispatch via `is_x86_feature_detected!`) and (2) the slice
// lengths match the dimensions: a.len() == m*k, b.len() == k*n,
// out.len() == m*n. In-bounds reasoning mirrors `matmul_avx512` with
// 4-lane vectors: the unrolled block touches b[p*n + j .. p*n + j + 16]
// only while j + 16 <= n, the single-vector loop while j + 4 <= n, and
// the scalar tail while j < n. Unaligned intrinsics throughout, so
// f64-alignment from the slice type suffices.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn matmul_avx2(a: &[f64], b: &[f64], out: &mut [f64], m: usize, k: usize, n: usize) {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), m * k, "matmul_avx2: lhs length");
    debug_assert_eq!(b.len(), k * n, "matmul_avx2: rhs length");
    debug_assert_eq!(out.len(), m * n, "matmul_avx2: out length");
    for i in 0..m {
        let arow = a.as_ptr().add(i * k);
        let orow = out.as_mut_ptr().add(i * n);
        let mut j = 0usize;
        while j + 16 <= n {
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut acc2 = _mm256_setzero_pd();
            let mut acc3 = _mm256_setzero_pd();
            for p in 0..k {
                let av = *arow.add(p);
                if av == 0.0 {
                    continue;
                }
                let vs = _mm256_set1_pd(av);
                let bp = b.as_ptr().add(p * n + j);
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(vs, _mm256_loadu_pd(bp)));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(vs, _mm256_loadu_pd(bp.add(4))));
                acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(vs, _mm256_loadu_pd(bp.add(8))));
                acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(vs, _mm256_loadu_pd(bp.add(12))));
            }
            _mm256_storeu_pd(orow.add(j), acc0);
            _mm256_storeu_pd(orow.add(j + 4), acc1);
            _mm256_storeu_pd(orow.add(j + 8), acc2);
            _mm256_storeu_pd(orow.add(j + 12), acc3);
            j += 16;
        }
        while j + 4 <= n {
            let mut acc = _mm256_setzero_pd();
            for p in 0..k {
                let av = *arow.add(p);
                if av == 0.0 {
                    continue;
                }
                let vs = _mm256_set1_pd(av);
                acc = _mm256_add_pd(
                    acc,
                    _mm256_mul_pd(vs, _mm256_loadu_pd(b.as_ptr().add(p * n + j))),
                );
            }
            _mm256_storeu_pd(orow.add(j), acc);
            j += 4;
        }
        while j < n {
            let mut s = 0.0;
            for p in 0..k {
                let av = *arow.add(p);
                if av == 0.0 {
                    continue;
                }
                s += av * *b.as_ptr().add(p * n + j);
            }
            *orow.add(j) = s;
            j += 1;
        }
    }
}

/// Broadcast-add a `[1,d]` bias row to every row (mirrors `Graph::add_row`).
pub fn add_row(x: &Array, bias: &Array) -> Array {
    assert_eq!(bias.rows, 1);
    assert_eq!(x.cols, bias.cols);
    let mut out = x.clone();
    for r in 0..out.rows {
        for c in 0..out.cols {
            *out.at_mut(r, c) += bias.at(0, c);
        }
    }
    out
}

/// Elementwise sum (mirrors `Graph::add`).
pub fn add(a: &Array, b: &Array) -> Array {
    a.zip(b, |x, y| x + y)
}

/// Elementwise product (mirrors `Graph::mul`).
pub fn mul(a: &Array, b: &Array) -> Array {
    a.zip(b, |x, y| x * y)
}

/// Scalar multiply (mirrors `Graph::scale`).
pub fn scale(a: &Array, k: f64) -> Array {
    a.map(|x| x * k)
}

/// Scalar offset (mirrors `Graph::add_const`).
pub fn add_const(a: &Array, k: f64) -> Array {
    a.map(|x| x + k)
}

/// Elementwise tanh (mirrors `Graph::tanh`).
pub fn tanh(a: &Array) -> Array {
    a.map(f64::tanh)
}

/// Elementwise logistic sigmoid (mirrors `Graph::sigmoid`).
pub fn sigmoid(a: &Array) -> Array {
    a.map(|x| 1.0 / (1.0 + (-x).exp()))
}

/// Leaky ReLU (mirrors `Graph::lrelu`).
pub fn lrelu(a: &Array, slope: f64) -> Array {
    a.map(|x| if x >= 0.0 { x } else { slope * x })
}

/// Row-wise layer normalisation (mirrors `Graph::layer_norm`).
pub fn layer_norm(x: &Array, gain: &Array, bias: &Array) -> Array {
    let eps = 1e-5;
    let d = x.cols;
    let mut out = Array::zeros(x.rows, d);
    for r in 0..x.rows {
        let row = &x.data[r * d..(r + 1) * d];
        let mu = row.iter().sum::<f64>() / d as f64;
        let var = row.iter().map(|&x| (x - mu) * (x - mu)).sum::<f64>() / d as f64;
        let sd = (var + eps).sqrt();
        for (c, &x) in row.iter().enumerate() {
            let xhat = (x - mu) / sd;
            *out.at_mut(r, c) = gain.at(0, c) * xhat + bias.at(0, c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use sage_util::prop::{forall, PropConfig};
    use sage_util::Rng;

    fn random_array(rng: &mut Rng, rows: usize, cols: usize) -> Array {
        // Mix in exact zeros so the skip-zero shortcut is exercised.
        let data = (0..rows * cols)
            .map(|_| {
                if rng.next_u64().is_multiple_of(8) {
                    0.0
                } else {
                    rng.range(-2.0, 2.0)
                }
            })
            .collect();
        Array::from_vec(rows, cols, data)
    }

    #[test]
    fn simd_matmul_bit_identical_to_array_matmul() {
        forall(
            "infer::matmul == Array::matmul",
            PropConfig::default(),
            |rng| {
                let m = 1 + (rng.next_u64() % 12) as usize;
                let k = 1 + (rng.next_u64() % 20) as usize;
                let n = 1 + (rng.next_u64() % 20) as usize;
                let a = random_array(rng, m, k);
                let b = random_array(rng, k, n);
                let got = matmul(&a, &b);
                let want = a.matmul(&b);
                for (g, w) in got.iter().zip(want.iter()) {
                    if g.to_bits() != w.to_bits() {
                        return Err(format!("{g} != {w} at {m}x{k}x{n}"));
                    }
                }
                Ok(())
            },
        );
    }

    fn assert_bits_eq(want: &Array, got: &Array) {
        assert_eq!(want.shape(), got.shape());
        let wb: Vec<u64> = want.iter().map(|v| v.to_bits()).collect();
        let gb: Vec<u64> = got.iter().map(|v| v.to_bits()).collect();
        assert_eq!(wb, gb);
    }

    #[test]
    fn elementwise_ops_match_graph() {
        let mut rng = Rng::new(11);
        let x = random_array(&mut rng, 3, 7);
        let y = random_array(&mut rng, 3, 7);
        let bias = random_array(&mut rng, 1, 7);
        let gain = random_array(&mut rng, 1, 7);

        let mut g = Graph::new();
        let xn = g.input(x.clone());
        let yn = g.input(y.clone());
        let bn = g.input(bias.clone());
        let gn = g.input(gain.clone());

        let node = g.add(xn, yn);
        assert_bits_eq(g.value(node), &add(&x, &y));
        let node = g.mul(xn, yn);
        assert_bits_eq(g.value(node), &mul(&x, &y));
        let node = g.add_row(xn, bn);
        assert_bits_eq(g.value(node), &add_row(&x, &bias));
        let node = g.scale(xn, -1.7);
        assert_bits_eq(g.value(node), &scale(&x, -1.7));
        let node = g.add_const(xn, 0.3);
        assert_bits_eq(g.value(node), &add_const(&x, 0.3));
        let node = g.tanh(xn);
        assert_bits_eq(g.value(node), &tanh(&x));
        let node = g.sigmoid(xn);
        assert_bits_eq(g.value(node), &sigmoid(&x));
        let node = g.lrelu(xn, 0.01);
        assert_bits_eq(g.value(node), &lrelu(&x, 0.01));
        let node = g.layer_norm(xn, gn, bn);
        assert_bits_eq(g.value(node), &layer_norm(&x, &gain, &bias));
    }
}
