//! Named parameter storage with Adam moments and binary (de)serialisation.

use crate::array::Array;
use sage_util::Rng;
use std::io::{self, Read, Write};

/// Index of a parameter within a [`ParamStore`].
pub type ParamId = usize;

/// One trainable tensor plus its optimiser state.
pub struct Param {
    pub name: String,
    pub value: Array,
    pub grad: Array,
    pub m: Array,
    pub v: Array,
}

/// The set of all trainable tensors of a model.
#[derive(Default)]
pub struct ParamStore {
    pub params: Vec<Param>,
}

impl ParamStore {
    pub fn new() -> Self {
        ParamStore { params: Vec::new() }
    }

    /// Register a tensor initialised to zeros.
    pub fn zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.push(name, Array::zeros(rows, cols))
    }

    /// Register a tensor with scaled-uniform ("Glorot") initialisation.
    pub fn glorot(&mut self, name: &str, rows: usize, cols: usize, rng: &mut Rng) -> ParamId {
        let limit = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols).map(|_| rng.range(-limit, limit)).collect();
        self.push(name, Array::from_vec(rows, cols, data))
    }

    /// Register a tensor filled with a constant.
    pub fn constant(&mut self, name: &str, rows: usize, cols: usize, x: f64) -> ParamId {
        self.push(name, Array::from_vec(rows, cols, vec![x; rows * cols]))
    }

    fn push(&mut self, name: &str, value: Array) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            name: name.to_string(),
            grad: Array::zeros(r, c),
            m: Array::zeros(r, c),
            v: Array::zeros(r, c),
            value,
        });
        self.params.len() - 1
    }

    pub fn get(&self, id: ParamId) -> &Array {
        &self.params[id].value
    }

    pub fn zero_grads(&mut self) {
        for p in &mut self.params {
            p.grad.data.iter_mut().for_each(|g| *g = 0.0);
        }
    }

    /// Total scalar parameter count.
    pub fn count(&self) -> usize {
        self.params.iter().map(|p| p.value.data.len()).sum()
    }

    /// Copy values from another store (shapes must match) — used for target
    /// networks.
    pub fn copy_values_from(&mut self, other: &ParamStore) {
        assert_eq!(
            self.params.len(),
            other.params.len(),
            "param count mismatch"
        );
        for (dst, src) in self.params.iter_mut().zip(&other.params) {
            assert_eq!(dst.value.shape(), src.value.shape(), "{} shape", dst.name);
            dst.value.data.copy_from_slice(&src.value.data);
        }
    }

    /// Polyak averaging: `dst = tau*src + (1-tau)*dst`.
    pub fn polyak_from(&mut self, other: &ParamStore, tau: f64) {
        for (dst, src) in self.params.iter_mut().zip(&other.params) {
            for (d, s) in dst.value.data.iter_mut().zip(&src.value.data) {
                *d = tau * s + (1.0 - tau) * *d;
            }
        }
    }

    /// Serialise values (not optimiser state) to a little-endian binary blob.
    pub fn save(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(b"SAGEPRM1")?;
        w.write_all(&(self.params.len() as u64).to_le_bytes())?;
        for p in &self.params {
            let nb = p.name.as_bytes();
            w.write_all(&(nb.len() as u64).to_le_bytes())?;
            w.write_all(nb)?;
            w.write_all(&(p.value.rows as u64).to_le_bytes())?;
            w.write_all(&(p.value.cols as u64).to_le_bytes())?;
            for &x in &p.value.data {
                w.write_all(&x.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Load values into an existing store with identical structure.
    pub fn load(&mut self, r: &mut impl Read) -> io::Result<()> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"SAGEPRM1" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut u = [0u8; 8];
        r.read_exact(&mut u)?;
        let n = u64::from_le_bytes(u) as usize;
        if n != self.params.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "param count mismatch",
            ));
        }
        for p in &mut self.params {
            r.read_exact(&mut u)?;
            let name_len = u64::from_le_bytes(u) as usize;
            // Validate before allocating: a corrupted stream must produce a
            // clean error, not an out-of-memory abort.
            if name_len != p.name.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "param name mismatch",
                ));
            }
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            if name != p.name.as_bytes() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "param name mismatch",
                ));
            }
            r.read_exact(&mut u)?;
            let rows = u64::from_le_bytes(u) as usize;
            r.read_exact(&mut u)?;
            let cols = u64::from_le_bytes(u) as usize;
            if (rows, cols) != p.value.shape() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "param shape mismatch",
                ));
            }
            let mut b = [0u8; 8];
            for x in &mut p.value.data {
                r.read_exact(&mut b)?;
                *x = f64::from_le_bytes(b);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_round_trip() {
        let mut rng = Rng::new(1);
        let mut a = ParamStore::new();
        a.glorot("w1", 4, 3, &mut rng);
        a.zeros("b1", 1, 3);
        let mut buf = Vec::new();
        a.save(&mut buf).unwrap();

        let mut b = ParamStore::new();
        let mut rng2 = Rng::new(99);
        b.glorot("w1", 4, 3, &mut rng2);
        b.zeros("b1", 1, 3);
        b.load(&mut &buf[..]).unwrap();
        assert_eq!(a.get(0).data, b.get(0).data);
    }

    #[test]
    fn load_rejects_mismatched_structure() {
        let mut a = ParamStore::new();
        a.zeros("w", 2, 2);
        let mut buf = Vec::new();
        a.save(&mut buf).unwrap();
        let mut b = ParamStore::new();
        b.zeros("different", 2, 2);
        assert!(b.load(&mut &buf[..]).is_err());
    }

    #[test]
    fn polyak_moves_toward_source() {
        let mut a = ParamStore::new();
        a.constant("w", 1, 1, 0.0);
        let mut b = ParamStore::new();
        b.constant("w", 1, 1, 10.0);
        a.polyak_from(&b, 0.1);
        assert!((a.get(0).data[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn glorot_within_limit() {
        let mut rng = Rng::new(5);
        let mut s = ParamStore::new();
        s.glorot("w", 100, 100, &mut rng);
        let limit = (6.0f64 / 200.0).sqrt();
        assert!(s.get(0).data.iter().all(|&x| x.abs() <= limit));
    }
}
