//! Network building blocks assembled from graph ops: fully connected,
//! LayerNorm, GRU cell, and the pre-norm residual block of Sage's policy
//! network (Fig. 6).

use crate::array::Array;
use crate::graph::{Graph, NodeId};
use crate::infer;
use crate::params::{ParamId, ParamStore};
use sage_util::Rng;

/// Fully connected layer y = x W + b.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub in_dim: usize,
    pub out_dim: usize,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        Linear {
            w: store.glorot(&format!("{name}.w"), in_dim, out_dim, rng),
            b: store.zeros(&format!("{name}.b"), 1, out_dim),
            in_dim,
            out_dim,
        }
    }

    pub fn fwd(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let h = g.matmul(x, w);
        g.add_row(h, b)
    }

    /// Graph-free forward, bit-identical to [`Linear::fwd`] (see
    /// [`crate::infer`]).
    pub fn infer(&self, store: &ParamStore, x: &Array) -> Array {
        let h = infer::matmul(x, store.get(self.w));
        infer::add_row(&h, store.get(self.b))
    }
}

/// Learned layer normalisation.
#[derive(Debug, Clone, Copy)]
pub struct LayerNorm {
    pub gain: ParamId,
    pub bias: ParamId,
}

impl LayerNorm {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        LayerNorm {
            gain: store.constant(&format!("{name}.gain"), 1, dim, 1.0),
            bias: store.zeros(&format!("{name}.bias"), 1, dim),
        }
    }

    pub fn fwd(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let gain = g.param(store, self.gain);
        let bias = g.param(store, self.bias);
        g.layer_norm(x, gain, bias)
    }

    /// Graph-free forward, bit-identical to [`LayerNorm::fwd`].
    pub fn infer(&self, store: &ParamStore, x: &Array) -> Array {
        infer::layer_norm(x, store.get(self.gain), store.get(self.bias))
    }
}

/// Gated recurrent unit cell (Cho et al. 2014).
#[derive(Debug, Clone, Copy)]
pub struct GruCell {
    pub wz: ParamId,
    pub uz: ParamId,
    pub bz: ParamId,
    pub wr: ParamId,
    pub ur: ParamId,
    pub br: ParamId,
    pub wh: ParamId,
    pub uh: ParamId,
    pub bh: ParamId,
    pub input_dim: usize,
    pub hidden_dim: usize,
}

impl GruCell {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input_dim: usize,
        hidden_dim: usize,
        rng: &mut Rng,
    ) -> Self {
        GruCell {
            wz: store.glorot(&format!("{name}.wz"), input_dim, hidden_dim, rng),
            uz: store.glorot(&format!("{name}.uz"), hidden_dim, hidden_dim, rng),
            bz: store.zeros(&format!("{name}.bz"), 1, hidden_dim),
            wr: store.glorot(&format!("{name}.wr"), input_dim, hidden_dim, rng),
            ur: store.glorot(&format!("{name}.ur"), hidden_dim, hidden_dim, rng),
            br: store.zeros(&format!("{name}.br"), 1, hidden_dim),
            wh: store.glorot(&format!("{name}.wh"), input_dim, hidden_dim, rng),
            uh: store.glorot(&format!("{name}.uh"), hidden_dim, hidden_dim, rng),
            bh: store.zeros(&format!("{name}.bh"), 1, hidden_dim),
            input_dim,
            hidden_dim,
        }
    }

    /// One recurrence step: returns h'.
    pub fn step(&self, g: &mut Graph, store: &ParamStore, x: NodeId, h: NodeId) -> NodeId {
        let wz = g.param(store, self.wz);
        let uz = g.param(store, self.uz);
        let bz = g.param(store, self.bz);
        let xz = g.matmul(x, wz);
        let hz = g.matmul(h, uz);
        let z_in = g.add(xz, hz);
        let z_in = g.add_row(z_in, bz);
        let z = g.sigmoid(z_in);

        let wr = g.param(store, self.wr);
        let ur = g.param(store, self.ur);
        let br = g.param(store, self.br);
        let xr = g.matmul(x, wr);
        let hr = g.matmul(h, ur);
        let r_in = g.add(xr, hr);
        let r_in = g.add_row(r_in, br);
        let r = g.sigmoid(r_in);

        let wh = g.param(store, self.wh);
        let uh = g.param(store, self.uh);
        let bh = g.param(store, self.bh);
        let xh = g.matmul(x, wh);
        let rh = g.mul(r, h);
        let hh = g.matmul(rh, uh);
        let c_in = g.add(xh, hh);
        let c_in = g.add_row(c_in, bh);
        let c = g.tanh(c_in);

        // h' = (1 - z) * h + z * c
        let neg_z = g.scale(z, -1.0);
        let one_minus_z = g.add_const(neg_z, 1.0);
        let keep = g.mul(one_minus_z, h);
        let new = g.mul(z, c);
        g.add(keep, new)
    }

    /// Graph-free recurrence step, bit-identical to [`GruCell::step`]:
    /// every intermediate is computed in the same op order so batched
    /// serving reproduces the training-time forward exactly.
    pub fn infer_step(&self, store: &ParamStore, x: &Array, h: &Array) -> Array {
        let xz = infer::matmul(x, store.get(self.wz));
        let hz = infer::matmul(h, store.get(self.uz));
        let z_in = infer::add_row(&infer::add(&xz, &hz), store.get(self.bz));
        let z = infer::sigmoid(&z_in);

        let xr = infer::matmul(x, store.get(self.wr));
        let hr = infer::matmul(h, store.get(self.ur));
        let r_in = infer::add_row(&infer::add(&xr, &hr), store.get(self.br));
        let r = infer::sigmoid(&r_in);

        let xh = infer::matmul(x, store.get(self.wh));
        let rh = infer::mul(&r, h);
        let hh = infer::matmul(&rh, store.get(self.uh));
        let c_in = infer::add_row(&infer::add(&xh, &hh), store.get(self.bh));
        let c = infer::tanh(&c_in);

        let one_minus_z = infer::add_const(&infer::scale(&z, -1.0), 1.0);
        let keep = infer::mul(&one_minus_z, h);
        let new = infer::mul(&z, &c);
        infer::add(&keep, &new)
    }
}

/// Pre-norm residual block: y = x + FC2(lrelu(LN(FC1(x)))).
#[derive(Debug, Clone, Copy)]
pub struct ResidualBlock {
    pub ln: LayerNorm,
    pub fc1: Linear,
    pub fc2: Linear,
}

impl ResidualBlock {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize, rng: &mut Rng) -> Self {
        ResidualBlock {
            ln: LayerNorm::new(store, &format!("{name}.ln"), dim),
            fc1: Linear::new(store, &format!("{name}.fc1"), dim, dim, rng),
            fc2: Linear::new(store, &format!("{name}.fc2"), dim, dim, rng),
        }
    }

    pub fn fwd(&self, g: &mut Graph, store: &ParamStore, x: NodeId) -> NodeId {
        let n = self.ln.fwd(g, store, x);
        let h = self.fc1.fwd(g, store, n);
        let h = g.lrelu(h, 0.01);
        let h = self.fc2.fwd(g, store, h);
        g.add(x, h)
    }

    /// Graph-free forward, bit-identical to [`ResidualBlock::fwd`].
    pub fn infer(&self, store: &ParamStore, x: &Array) -> Array {
        let n = self.ln.infer(store, x);
        let h = self.fc1.infer(store, &n);
        let h = infer::lrelu(&h, 0.01);
        let h = self.fc2.infer(store, &h);
        infer::add(x, &h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;

    #[test]
    fn linear_shapes() {
        let mut rng = Rng::new(1);
        let mut store = ParamStore::new();
        let l = Linear::new(&mut store, "l", 4, 7, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Array::zeros(3, 4));
        let y = l.fwd(&mut g, &store, x);
        assert_eq!(g.value(y).shape(), (3, 7));
    }

    #[test]
    fn gru_step_shapes_and_bounds() {
        let mut rng = Rng::new(2);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 5, 8, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Array::from_vec(2, 5, vec![0.5; 10]));
        let h = g.input(Array::zeros(2, 8));
        let h1 = cell.step(&mut g, &store, x, h);
        assert_eq!(g.value(h1).shape(), (2, 8));
        // GRU output is a convex combination of h (0) and tanh (|.|<1).
        assert!(g.value(h1).iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn gru_retains_state_with_zero_update_gate() {
        let mut rng = Rng::new(3);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 2, 4, &mut rng);
        // Force z ~ 0 via a hugely negative update bias: h' ~ h.
        store.params[cell.bz]
            .value
            .data
            .iter_mut()
            .for_each(|b| *b = -50.0);
        let mut g = Graph::new();
        let x = g.input(Array::from_vec(1, 2, vec![1.0, -1.0]));
        let h0 = g.input(Array::from_vec(1, 4, vec![0.3, -0.2, 0.1, 0.9]));
        let h1 = cell.step(&mut g, &store, x, h0);
        for (a, b) in g.value(h1).iter().zip(g.value(h0).iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn residual_block_is_identity_plus_perturbation() {
        let mut rng = Rng::new(4);
        let mut store = ParamStore::new();
        let rb = ResidualBlock::new(&mut store, "rb", 6, &mut rng);
        // Zero the second FC: output must equal input exactly.
        store.params[rb.fc2.w]
            .value
            .data
            .iter_mut()
            .for_each(|w| *w = 0.0);
        let mut g = Graph::new();
        let x = g.input(Array::from_vec(2, 6, vec![0.1; 12]));
        let y = rb.fwd(&mut g, &store, x);
        for (a, b) in g.value(y).iter().zip(g.value(x).iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn infer_paths_bit_identical_to_graph_forward() {
        use sage_util::prop::{forall, PropConfig};
        forall(
            "layer infer == graph fwd",
            PropConfig::new(40, 0xF0),
            |rng| {
                let b = 1 + (rng.next_u64() % 9) as usize;
                let din = 1 + (rng.next_u64() % 12) as usize;
                let dh = 1 + (rng.next_u64() % 12) as usize;
                let mut store = ParamStore::new();
                let lin = Linear::new(&mut store, "l", din, dh, rng);
                let cell = GruCell::new(&mut store, "g", din, dh, rng);
                let rb = ResidualBlock::new(&mut store, "r", din, rng);
                let x =
                    Array::from_vec(b, din, (0..b * din).map(|_| rng.range(-3.0, 3.0)).collect());
                let h = Array::from_vec(b, dh, (0..b * dh).map(|_| rng.range(-1.0, 1.0)).collect());

                let mut g = Graph::new();
                let xn = g.input(x.clone());
                let hn = g.input(h.clone());
                let want_lin = lin.fwd(&mut g, &store, xn);
                let want_gru = cell.step(&mut g, &store, xn, hn);
                let want_rb = rb.fwd(&mut g, &store, xn);

                let checks = [
                    (g.value(want_lin), lin.infer(&store, &x)),
                    (g.value(want_gru), cell.infer_step(&store, &x, &h)),
                    (g.value(want_rb), rb.infer(&store, &x)),
                ];
                for (want, got) in checks {
                    for (w, o) in want.iter().zip(got.iter()) {
                        if w.to_bits() != o.to_bits() {
                            return Err(format!("{w} != {o} (b={b}, din={din}, dh={dh})"));
                        }
                    }
                }
                Ok(())
            },
        );
    }

    #[test]
    fn gru_bptt_gradients_flow() {
        // Unroll 3 steps and check some gradient reaches the input weights.
        let mut rng = Rng::new(5);
        let mut store = ParamStore::new();
        let cell = GruCell::new(&mut store, "gru", 3, 4, &mut rng);
        let head = Linear::new(&mut store, "head", 4, 1, &mut rng);
        let mut g = Graph::new();
        let mut h = g.input(Array::zeros(2, 4));
        for t in 0..3 {
            let x = g.input(Array::from_vec(2, 3, vec![0.1 * (t as f64 + 1.0); 6]));
            h = cell.step(&mut g, &store, x, h);
        }
        let y = head.fwd(&mut g, &store, h);
        let loss = g.mean(y);
        g.backward(loss, &mut store);
        let wz_grad: f64 = store.params[cell.wz]
            .grad
            .data
            .iter()
            .map(|x| x.abs())
            .sum();
        assert!(wz_grad > 0.0, "gradient must flow through time");
    }
}
