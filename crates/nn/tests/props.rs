//! Property-style tests for the autodiff engine and layers, driven by the
//! workspace's own deterministic RNG (no external property-testing framework:
//! the build must work offline).

use sage_nn::gmm::{gmm_log_density, GmmParams};
use sage_nn::graph::log_sum_exp;
use sage_nn::{Adam, Array, Graph, ParamStore};
use sage_util::Rng;

fn arr(rows: usize, cols: usize, data: Vec<f64>) -> Array {
    Array::from_vec(rows, cols, data)
}

fn vec_in(rng: &mut Rng, len: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..len).map(|_| rng.range(lo, hi)).collect()
}

#[test]
fn matmul_transpose_identity() {
    // (A B)^T == B^T A^T
    let mut rng = Rng::new(0x11AA);
    for _ in 0..100 {
        let ma = arr(2, 3, vec_in(&mut rng, 6, -10.0, 10.0));
        let mb = arr(3, 2, vec_in(&mut rng, 6, -10.0, 10.0));
        let left = ma.matmul(&mb).t();
        let right = mb.t().matmul(&ma.t());
        for (x, y) in left.iter().zip(right.iter()) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}

#[test]
fn log_sum_exp_bounds() {
    let mut rng = Rng::new(0x22BB);
    for _ in 0..200 {
        let len = 1 + rng.below(19);
        let xs = vec_in(&mut rng, len, -50.0, 50.0);
        let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = log_sum_exp(&xs);
        assert!(lse >= m - 1e-12);
        assert!(lse <= m + (xs.len() as f64).ln() + 1e-12);
    }
}

#[test]
fn gmm_density_normalised_weights() {
    let mut rng = Rng::new(0x33CC);
    for _ in 0..200 {
        let means = vec_in(&mut rng, 3, -2.0, 2.0);
        let log_stds = vec_in(&mut rng, 3, -1.5, 0.5);
        let raw_w = vec_in(&mut rng, 3, 0.1, 5.0);
        let a = rng.range(-3.0, 3.0);
        let total: f64 = raw_w.iter().sum();
        let p = GmmParams {
            means,
            log_stds,
            weights: raw_w.iter().map(|w| w / total).collect(),
        };
        let logp = gmm_log_density(&p, a);
        assert!(logp.is_finite());
        // Density bounded above by the tallest component peak.
        let peak = p
            .log_stds
            .iter()
            .map(|ls| -ls - 0.918938533204672_f64)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(logp <= peak + 1e-9);
    }
}

#[test]
fn graph_linear_gradient_exact() {
    // loss = mean((w*x)^2) -> dloss/dw = 2*w*x^2 exactly.
    let mut rng = Rng::new(0x44DD);
    for _ in 0..100 {
        let w0 = rng.range(-2.0, 2.0);
        let x0 = rng.range(-2.0, 2.0);
        let mut store = ParamStore::new();
        let w = store.constant("w", 1, 1, w0);
        let mut g = Graph::new();
        let x = g.input(Array::scalar(x0));
        let wn = g.param(&store, w);
        let y = g.matmul(x, wn);
        let y2 = g.mul(y, y);
        let loss = g.mean(y2);
        g.backward(loss, &mut store);
        let expected = 2.0 * w0 * x0 * x0;
        assert!((store.params[w].grad.data[0] - expected).abs() < 1e-9);
    }
}

#[test]
fn adam_step_moves_against_gradient() {
    let mut rng = Rng::new(0x55EE);
    for _ in 0..100 {
        let g0 = rng.range(0.01, 10.0);
        let mut store = ParamStore::new();
        let w = store.constant("w", 1, 1, 1.0);
        store.params[w].grad.data[0] = g0;
        let mut opt = Adam::new(0.01);
        opt.clip_norm = 0.0;
        opt.step(&mut store);
        assert!(
            store.get(w).data[0] < 1.0,
            "positive gradient must decrease w"
        );
    }
}
