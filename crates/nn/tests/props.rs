//! Property-based tests for the autodiff engine and layers.

use proptest::prelude::*;
use sage_nn::gmm::{gmm_log_density, GmmParams};
use sage_nn::graph::log_sum_exp;
use sage_nn::{Adam, Array, Graph, ParamStore};

fn arr(rows: usize, cols: usize, data: Vec<f64>) -> Array {
    Array::from_vec(rows, cols, data)
}

proptest! {
    #[test]
    fn matmul_transpose_identity(
        a in prop::collection::vec(-10.0f64..10.0, 6),
        b in prop::collection::vec(-10.0f64..10.0, 6),
    ) {
        // (A B)^T == B^T A^T
        let ma = arr(2, 3, a);
        let mb = arr(3, 2, b);
        let left = ma.matmul(&mb).t();
        let right = mb.t().matmul(&ma.t());
        for (x, y) in left.iter().zip(right.iter()) {
            prop_assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn log_sum_exp_bounds(xs in prop::collection::vec(-50.0f64..50.0, 1..20)) {
        let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lse = log_sum_exp(&xs);
        prop_assert!(lse >= m - 1e-12);
        prop_assert!(lse <= m + (xs.len() as f64).ln() + 1e-12);
    }

    #[test]
    fn gmm_density_normalised_weights(
        means in prop::collection::vec(-2.0f64..2.0, 3),
        log_stds in prop::collection::vec(-1.5f64..0.5, 3),
        raw_w in prop::collection::vec(0.1f64..5.0, 3),
        a in -3.0f64..3.0,
    ) {
        let total: f64 = raw_w.iter().sum();
        let p = GmmParams {
            means,
            log_stds,
            weights: raw_w.iter().map(|w| w / total).collect(),
        };
        let logp = gmm_log_density(&p, a);
        prop_assert!(logp.is_finite());
        // Density bounded above by the tallest component peak.
        let peak = p
            .log_stds
            .iter()
            .map(|ls| -ls - 0.918938533204672_f64)
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(logp <= peak + 1e-9);
    }

    #[test]
    fn graph_linear_gradient_exact(
        w0 in -2.0f64..2.0,
        x0 in -2.0f64..2.0,
    ) {
        // loss = mean((w*x)^2) -> dloss/dw = 2*w*x^2 exactly.
        let mut store = ParamStore::new();
        let w = store.constant("w", 1, 1, w0);
        let mut g = Graph::new();
        let x = g.input(Array::scalar(x0));
        let wn = g.param(&store, w);
        let y = g.matmul(x, wn);
        let y2 = g.mul(y, y);
        let loss = g.mean(y2);
        g.backward(loss, &mut store);
        let expected = 2.0 * w0 * x0 * x0;
        prop_assert!((store.params[w].grad.data[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn adam_step_moves_against_gradient(g0 in 0.01f64..10.0) {
        let mut store = ParamStore::new();
        let w = store.constant("w", 1, 1, 1.0);
        store.params[w].grad.data[0] = g0;
        let mut opt = Adam::new(0.01);
        opt.clip_norm = 0.0;
        opt.step(&mut store);
        prop_assert!(store.get(w).data[0] < 1.0, "positive gradient must decrease w");
    }
}
