//! `sage-lint`: the workspace determinism & safety static analyzer.
//!
//! The repo's headline guarantee is exact replay: the same seed yields the
//! same pool bytes, model bytes, league rankings and serve digests at any
//! thread count. The golden-digest tests catch a violation only after a
//! scenario happens to exercise it; this crate rejects the violation at
//! the source line that introduces it, before it can reach a digest.
//!
//! The analyzer is a hand-rolled pipeline — zero external dependencies,
//! consistent with the workspace's offline-build rule:
//!
//! 1. [`lexer`] — tokens plus per-line comment/attribute structure;
//! 2. [`parse`] — a tolerant recursive-descent parser producing an
//!    item-level AST ([`ast`]): fns, impls, types, use-trees;
//! 3. [`resolve`] — per-crate symbol tables with use-resolution, bounded
//!    by real `Cargo.toml` dependency edges;
//! 4. [`callgraph`] — a workspace call graph plus per-fn facts (unsafe,
//!    panic sites, `env::var` reads, par-closure spans, boundary docs);
//! 5. [`rules`] — line rules (D1–D3, U1, P1, O1, A0) and interprocedural
//!    rules (D4–D6, U2, P2) whose findings carry call-path evidence.
//!
//! See [`rules`] for the rule table and the `// lint:allow(RULE): reason`
//! suppression syntax.
//!
//! Run it with `cargo run -p sage-lint`; it walks every `crates/*/src`,
//! `crates/*/tests`, root `src/` and `tests/` file, prints human-readable
//! findings, and writes `artifacts/results/LINT_report.json` (per-rule
//! counts, per-crate breakdown, per-phase timings) through the atomic
//! report writer.

pub mod ast;
pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod resolve;
pub mod rules;

pub use rules::{analyze, FileClass, FileOutcome, Finding, Rule, Suppressed};

use resolve::{ParsedFile, Symbols};
use sage_util::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Per-crate slice of a workspace report.
#[derive(Debug, Default, Clone)]
pub struct CrateStats {
    pub files: usize,
    pub findings: usize,
    pub suppressed: usize,
}

/// Lint results for a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
    /// Per-phase / per-rule wall times in microseconds, in execution
    /// order: `lex_parse`, `line_rules`, `symbols_callgraph`, then one
    /// entry per interprocedural rule. Diagnostic only — zeroed by the
    /// binary when `SAGE_LINT_TIMINGS=0` so reports byte-compare.
    pub timings_us: Vec<(String, u64)>,
    pub per_crate: BTreeMap<String, CrateStats>,
}

impl WorkspaceReport {
    /// Per-rule `(unsuppressed, suppressed)` counts, keyed by rule name.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for r in Rule::ALL {
            counts.insert(r.name(), (0, 0));
        }
        for f in &self.findings {
            if let Some(c) = counts.get_mut(f.rule.name()) {
                c.0 += 1;
            }
        }
        for s in &self.suppressed {
            if let Some(c) = counts.get_mut(s.rule.name()) {
                c.1 += 1;
            }
        }
        counts
    }

    /// The machine-readable report, serialisable via `util::json`.
    pub fn to_json(&self) -> Json {
        let finding = |f: &Finding| {
            Json::obj(vec![
                ("file", Json::str(f.file.clone())),
                ("line", Json::Num(f.line as f64)),
                ("rule", Json::str(f.rule.name())),
                ("msg", Json::str(f.msg.clone())),
                (
                    "path",
                    Json::Arr(f.path.iter().map(|q| Json::str(q.clone())).collect()),
                ),
            ])
        };
        let suppressed = |s: &Suppressed| {
            Json::obj(vec![
                ("file", Json::str(s.file.clone())),
                ("line", Json::Num(s.line as f64)),
                ("rule", Json::str(s.rule.name())),
                ("reason", Json::str(s.reason.clone())),
            ])
        };
        let rules: BTreeMap<String, Json> = self
            .rule_counts()
            .into_iter()
            .map(|(name, (fired, supp))| {
                (
                    name.to_string(),
                    Json::obj(vec![
                        ("unsuppressed", Json::Num(fired as f64)),
                        ("suppressed", Json::Num(supp as f64)),
                    ]),
                )
            })
            .collect();
        let timings: BTreeMap<String, Json> = self
            .timings_us
            .iter()
            .map(|(phase, us)| (phase.clone(), Json::Num(*us as f64)))
            .collect();
        let crates: BTreeMap<String, Json> = self
            .per_crate
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    Json::obj(vec![
                        ("files", Json::Num(c.files as f64)),
                        ("findings", Json::Num(c.findings as f64)),
                        ("suppressed", Json::Num(c.suppressed as f64)),
                    ]),
                )
            })
            .collect();
        Json::obj(vec![
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            ("rules", Json::Obj(rules)),
            ("timings_us", Json::Obj(timings)),
            ("crates", Json::Obj(crates)),
            (
                "findings",
                Json::Arr(self.findings.iter().map(finding).collect()),
            ),
            (
                "suppressed",
                Json::Arr(self.suppressed.iter().map(suppressed).collect()),
            ),
        ])
    }
}

/// Monotonic stamp for the diagnostic phase timings below.
// lint:allow(D2): lint-phase timings are diagnostic-only and zeroed under SAGE_LINT_TIMINGS=0
fn stamp() -> std::time::Instant {
    // lint:allow(D2): lint-phase timings are diagnostic-only and zeroed under SAGE_LINT_TIMINGS=0
    std::time::Instant::now()
}

/// Run the full analysis pipeline over in-memory sources.
///
/// `sources` is `(workspace-relative path, content)`; `deps` maps each
/// crate to the workspace crates it depends on (see
/// [`resolve::scan_deps`] — pass an empty map to make every crate
/// visible to every other, which is what fixture tests want).
///
/// This is the one entry point that runs *everything*: line rules per
/// file, then symbol resolution, call-graph construction and the
/// interprocedural rules, then the deferred unused-suppression check
/// (A0) — an allow is "used" if either pass consumed it.
pub fn analyze_sources(
    sources: &[(String, String)],
    deps: &BTreeMap<String, Vec<String>>,
) -> WorkspaceReport {
    let mut report = WorkspaceReport::default();
    let mut out = FileOutcome::default();

    let t = stamp();
    let files: Vec<ParsedFile> = sources
        .iter()
        .map(|(rel, src)| {
            let lexed = lexer::lex(src);
            let ast = parse::parse(&lexed);
            ParsedFile {
                rel: rel.clone(),
                class: FileClass::from_rel_path(rel),
                lexed,
                ast,
            }
        })
        .collect();
    report
        .timings_us
        .push(("lex_parse".into(), t.elapsed().as_micros() as u64));

    let t = stamp();
    let mut allows: Vec<Vec<rules::Allow>> = Vec::with_capacity(files.len());
    for pf in &files {
        let mut a = rules::parse_allows(&pf.rel, &pf.lexed, &mut out);
        rules::line_pass(&pf.rel, &pf.class, &pf.lexed, &mut a, &mut out);
        allows.push(a);
    }
    report
        .timings_us
        .push(("line_rules".into(), t.elapsed().as_micros() as u64));

    let t = stamp();
    let symbols = Symbols::build(&files, deps);
    let cg = callgraph::build(&files, &symbols);
    report
        .timings_us
        .push(("symbols_callgraph".into(), t.elapsed().as_micros() as u64));

    let ws = rules::Ws {
        files: &files,
        symbols: &symbols,
        cg: &cg,
    };
    for rule in Rule::INTERPROCEDURAL {
        let t = stamp();
        for raw in rules::run_rule(&ws, rule) {
            let rel = files[raw.file_idx].rel.clone();
            rules::emit(
                &rel,
                &mut allows[raw.file_idx],
                &mut out,
                raw.line,
                raw.rule,
                raw.msg,
                raw.path,
            );
        }
        report.timings_us.push((
            format!("rule_{}", rule.name().to_ascii_lowercase()),
            t.elapsed().as_micros() as u64,
        ));
    }

    for (i, pf) in files.iter().enumerate() {
        rules::finish_allows(&pf.rel, &allows[i], &mut out);
    }

    out.findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    // Two detection routes can land on the same site (e.g. D5 sees one
    // iteration both as a `.iter()` call and as a `for` loop) — report it
    // once.
    out.findings
        .dedup_by(|a, b| (&a.file, a.line, a.rule, &a.msg) == (&b.file, b.line, b.rule, &b.msg));
    out.suppressed
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    report.files_scanned = files.len();
    for pf in &files {
        report
            .per_crate
            .entry(pf.class.crate_name.clone())
            .or_default()
            .files += 1;
    }
    for f in &out.findings {
        let krate = FileClass::from_rel_path(&f.file).crate_name;
        report.per_crate.entry(krate).or_default().findings += 1;
    }
    for s in &out.suppressed {
        let krate = FileClass::from_rel_path(&s.file).crate_name;
        report.per_crate.entry(krate).or_default().suppressed += 1;
    }
    report.findings = out.findings;
    report.suppressed = out.suppressed;
    report
}

/// The directories scanned relative to the workspace root: every crate's
/// `src` and `tests`, plus the root facade crate. Fixture corpora (the
/// lint's own test inputs) and binary golden directories are skipped.
fn scan_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = vec![root.join("src"), root.join("tests")];
    let crates_dir = root.join("crates");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for c in entries {
        roots.push(c.join("src"));
        roots.push(c.join("tests"));
    }
    Ok(roots.into_iter().filter(|p| p.is_dir()).collect())
}

/// Recursively collect `.rs` files under `dir` in sorted order, skipping
/// `fixtures/` (intentional rule-trippers) and `golden/` directories.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if name == "fixtures" || name == "golden" {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Collect the workspace's lintable sources as `(rel_path, text)` pairs,
/// in sorted path order. Exposed so tests can lint the real tree with
/// injected negative-control files appended.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    for sub in scan_roots(root)? {
        collect_rs(&sub, &mut files)?;
    }
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        sources.push((rel, src));
    }
    Ok(sources)
}

/// Lint every source file of the workspace rooted at `root` — the full
/// pipeline, with dependency visibility read from the real Cargo.tomls.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let sources = collect_sources(root)?;
    let deps = resolve::scan_deps(root).unwrap_or_default();
    Ok(analyze_sources(&sources, &deps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_class_from_paths() {
        let c = FileClass::from_rel_path("crates/serve/src/runtime.rs");
        assert_eq!(c.crate_name, "serve");
        assert!(!c.in_tests_dir && !c.is_util_par && !c.is_env_cfg);
        let c = FileClass::from_rel_path("crates/core/tests/golden_train.rs");
        assert!(c.in_tests_dir);
        let c = FileClass::from_rel_path("crates/util/src/par.rs");
        assert!(c.is_util_par);
        let c = FileClass::from_rel_path("crates/util/src/env_cfg.rs");
        assert!(c.is_env_cfg);
        let c = FileClass::from_rel_path("src/lib.rs");
        assert_eq!(c.crate_name, "sage");
    }

    #[test]
    fn report_json_parses_back() {
        let mut r = WorkspaceReport {
            files_scanned: 2,
            ..Default::default()
        };
        r.timings_us.push(("lex_parse".into(), 42));
        r.per_crate.insert(
            "core".into(),
            CrateStats {
                files: 2,
                findings: 1,
                suppressed: 0,
            },
        );
        r.findings.push(Finding {
            file: "a.rs".into(),
            line: 3,
            rule: Rule::D1,
            msg: "x".into(),
            path: vec!["core::f".into()],
        });
        let text = r.to_json().to_string();
        let parsed = Json::parse(&text).expect("report JSON must parse");
        assert_eq!(
            parsed.get("files_scanned").and_then(|v| v.as_usize()),
            Some(2)
        );
        let d1 = parsed.get("rules").and_then(|r| r.get("D1"));
        assert_eq!(
            d1.and_then(|d| d.get("unsuppressed"))
                .and_then(|v| v.as_usize()),
            Some(1)
        );
        assert_eq!(
            parsed
                .get("timings_us")
                .and_then(|t| t.get("lex_parse"))
                .and_then(|v| v.as_usize()),
            Some(42)
        );
        assert_eq!(
            parsed
                .get("crates")
                .and_then(|c| c.get("core"))
                .and_then(|c| c.get("files"))
                .and_then(|v| v.as_usize()),
            Some(2)
        );
    }

    #[test]
    fn analyze_sources_runs_line_and_interprocedural_rules() {
        let sources = vec![
            (
                "crates/core/src/lib.rs".to_string(),
                "fn site() { let _ = std::env::var(\"X\"); }\nfn mid() { site(); }\npub fn api() { mid(); }\n"
                    .to_string(),
            ),
            (
                "crates/eval/src/lib.rs".to_string(),
                "use std::collections::HashMap;\n".to_string(),
            ),
        ];
        let r = analyze_sources(&sources, &BTreeMap::new());
        assert_eq!(r.files_scanned, 2);
        let rules_hit: Vec<Rule> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules_hit.contains(&Rule::D1), "{rules_hit:?}");
        assert!(rules_hit.contains(&Rule::D6), "{rules_hit:?}");
        let d6 = r.findings.iter().find(|f| f.rule == Rule::D6).unwrap();
        assert_eq!(
            d6.path,
            vec!["core::api", "core::mid", "core::site"],
            "D6 findings carry the public call path as evidence"
        );
        // Phase timings exist for every phase + interprocedural rule.
        let names: Vec<&str> = r.timings_us.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "lex_parse",
                "line_rules",
                "symbols_callgraph",
                "rule_d4",
                "rule_d5",
                "rule_d6",
                "rule_u2",
                "rule_p2"
            ]
        );
        assert_eq!(r.per_crate["core"].files, 1);
        assert_eq!(r.per_crate["eval"].findings, 1);
    }

    #[test]
    fn interprocedural_findings_are_suppressible_and_unused_allows_fire_a0() {
        let src = "\
// lint:allow(D6): fixture exercises the suppression path for D6
fn site() { let _ = std::env::var(\"X\"); }\n";
        let r = analyze_sources(
            &[("crates/core/src/lib.rs".to_string(), src.to_string())],
            &BTreeMap::new(),
        );
        assert!(
            r.findings.is_empty(),
            "allow must cover the D6 site: {:?}",
            r.findings
        );
        assert_eq!(r.suppressed.len(), 1);
        assert_eq!(r.suppressed[0].rule, Rule::D6);

        // The same allow with nothing to suppress is an A0 after the
        // deferred check.
        let src = "// lint:allow(D6): nothing here reads the environment\nfn quiet() {}\n";
        let r = analyze_sources(
            &[("crates/core/src/lib.rs".to_string(), src.to_string())],
            &BTreeMap::new(),
        );
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::A0);
    }
}
