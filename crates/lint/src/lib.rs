//! `sage-lint`: the workspace determinism & safety lint.
//!
//! The repo's headline guarantee is exact replay: the same seed yields the
//! same pool bytes, model bytes, league rankings and serve digests at any
//! thread count. The golden-digest tests catch a violation only after a
//! scenario happens to exercise it; this crate rejects the violation at
//! the source line that introduces it, before it can reach a digest.
//!
//! The analyzer is a hand-rolled lexer ([`lexer`]) plus a line-oriented
//! rule engine ([`rules`]) — zero external dependencies, consistent with
//! the workspace's offline-build rule. See [`rules`] for the rule table
//! and the `// lint:allow(RULE): reason` suppression syntax.
//!
//! Run it with `cargo run -p sage-lint`; it walks every `crates/*/src`,
//! `crates/*/tests`, root `src/` and `tests/` file, prints human-readable
//! findings, and writes `artifacts/results/LINT_report.json` through the
//! atomic report writer.

pub mod lexer;
pub mod rules;

pub use rules::{analyze, FileClass, FileOutcome, Finding, Rule, Suppressed};

use sage_util::Json;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// Lint results for a whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub files_scanned: usize,
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
}

impl WorkspaceReport {
    /// Per-rule `(unsuppressed, suppressed)` counts, keyed by rule name.
    pub fn rule_counts(&self) -> BTreeMap<&'static str, (usize, usize)> {
        let mut counts: BTreeMap<&'static str, (usize, usize)> = BTreeMap::new();
        for r in Rule::ALL {
            counts.insert(r.name(), (0, 0));
        }
        for f in &self.findings {
            if let Some(c) = counts.get_mut(f.rule.name()) {
                c.0 += 1;
            }
        }
        for s in &self.suppressed {
            if let Some(c) = counts.get_mut(s.rule.name()) {
                c.1 += 1;
            }
        }
        counts
    }

    /// The machine-readable report, serialisable via `util::json`.
    pub fn to_json(&self) -> Json {
        let finding = |f: &Finding| {
            Json::obj(vec![
                ("file", Json::str(f.file.clone())),
                ("line", Json::Num(f.line as f64)),
                ("rule", Json::str(f.rule.name())),
                ("msg", Json::str(f.msg.clone())),
            ])
        };
        let suppressed = |s: &Suppressed| {
            Json::obj(vec![
                ("file", Json::str(s.file.clone())),
                ("line", Json::Num(s.line as f64)),
                ("rule", Json::str(s.rule.name())),
                ("reason", Json::str(s.reason.clone())),
            ])
        };
        let rules: BTreeMap<String, Json> = self
            .rule_counts()
            .into_iter()
            .map(|(name, (fired, supp))| {
                (
                    name.to_string(),
                    Json::obj(vec![
                        ("unsuppressed", Json::Num(fired as f64)),
                        ("suppressed", Json::Num(supp as f64)),
                    ]),
                )
            })
            .collect();
        Json::obj(vec![
            ("files_scanned", Json::Num(self.files_scanned as f64)),
            ("rules", Json::Obj(rules)),
            (
                "findings",
                Json::Arr(self.findings.iter().map(finding).collect()),
            ),
            (
                "suppressed",
                Json::Arr(self.suppressed.iter().map(suppressed).collect()),
            ),
        ])
    }
}

/// The directories scanned relative to the workspace root: every crate's
/// `src` and `tests`, plus the root facade crate. Fixture corpora (the
/// lint's own test inputs) and binary golden directories are skipped.
fn scan_roots(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut roots = vec![root.join("src"), root.join("tests")];
    let crates_dir = root.join("crates");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for c in entries {
        roots.push(c.join("src"));
        roots.push(c.join("tests"));
    }
    Ok(roots.into_iter().filter(|p| p.is_dir()).collect())
}

/// Recursively collect `.rs` files under `dir` in sorted order, skipping
/// `fixtures/` (intentional rule-trippers) and `golden/` directories.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for p in entries {
        let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if p.is_dir() {
            if name == "fixtures" || name == "golden" {
                continue;
            }
            collect_rs(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every source file of the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut files = Vec::new();
    for sub in scan_roots(root)? {
        collect_rs(&sub, &mut files)?;
    }
    let mut report = WorkspaceReport::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&path)?;
        let class = FileClass::from_rel_path(&rel);
        let outcome = analyze(&rel, &class, &src);
        report.findings.extend(outcome.findings);
        report.suppressed.extend(outcome.suppressed);
        report.files_scanned += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_class_from_paths() {
        let c = FileClass::from_rel_path("crates/serve/src/runtime.rs");
        assert_eq!(c.crate_name, "serve");
        assert!(!c.in_tests_dir && !c.is_util_par);
        let c = FileClass::from_rel_path("crates/core/tests/golden_train.rs");
        assert!(c.in_tests_dir);
        let c = FileClass::from_rel_path("crates/util/src/par.rs");
        assert!(c.is_util_par);
        let c = FileClass::from_rel_path("src/lib.rs");
        assert_eq!(c.crate_name, "sage");
    }

    #[test]
    fn report_json_parses_back() {
        let mut r = WorkspaceReport {
            files_scanned: 2,
            ..Default::default()
        };
        r.findings.push(Finding {
            file: "a.rs".into(),
            line: 3,
            rule: Rule::D1,
            msg: "x".into(),
        });
        let text = r.to_json().to_string();
        let parsed = Json::parse(&text).expect("report JSON must parse");
        assert_eq!(
            parsed.get("files_scanned").and_then(|v| v.as_usize()),
            Some(2)
        );
        let d1 = parsed.get("rules").and_then(|r| r.get("D1"));
        assert_eq!(
            d1.and_then(|d| d.get("unsuppressed"))
                .and_then(|v| v.as_usize()),
            Some(1)
        );
    }
}
