//! The workspace call graph and per-function facts.
//!
//! Built on top of [`crate::resolve::Symbols`]: every `fn` body is
//! scanned once for call expressions (`path(...)`, `recv.method(...)`),
//! each resolved to workspace fn nodes — exactly when a receiver type is
//! known, conservatively to all visible same-named methods when it is
//! not. Unresolvable names (std, macros, locals) produce no edge.
//!
//! The same scan collects the facts the interprocedural rules consume:
//! `unsafe` blocks, panic-family sites, `env::var` reads, calls into the
//! `par_map`/`par_map_range` helpers (with their closure argument token
//! ranges), and the doc-comment markers that bound taint propagation
//! (`SAFETY-BOUNDARY:`, `# Panics`, `lint:ordered-merge`).

use crate::lexer::{Lexed, SpannedTok, Tok};
use crate::parse::matching;
use crate::resolve::{ParsedFile, Symbols};
use std::collections::BTreeMap;

/// A `par_map`/`par_map_range` call site inside a fn body.
#[derive(Debug, Clone)]
pub struct ParCall {
    /// Token index of the callee name.
    pub name_idx: usize,
    /// Token range `[open, close]` of the call's argument parens.
    pub args: (usize, usize),
}

/// Facts about one fn that the interprocedural rules consume.
#[derive(Debug, Default)]
pub struct FnFacts {
    /// Declared `unsafe fn`, or body contains an `unsafe` block.
    pub has_unsafe: bool,
    /// Lines of `unwrap(` / `expect(` / `panic!` sites in the body.
    pub panic_lines: Vec<usize>,
    /// Lines of `env::var` / `env::var_os` reads in the body.
    pub env_lines: Vec<usize>,
    /// `par_map` / `par_map_range` call sites.
    pub par_calls: Vec<ParCall>,
    /// Doc run above the fn contains `SAFETY-BOUNDARY:`.
    pub safety_boundary: bool,
    /// Doc run above the fn contains `# Panics`.
    pub panics_doc: bool,
    /// Doc run above the fn contains `lint:ordered-merge`.
    pub ordered_merge: bool,
}

/// The workspace call graph, indexed by fn node id.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Forward edges: `calls[f]` = (callee id, call line), deduplicated.
    pub calls: Vec<Vec<(usize, usize)>>,
    /// Reverse edges: `rev[f]` = caller ids, deduplicated and sorted.
    pub rev: Vec<Vec<usize>>,
    pub facts: Vec<FnFacts>,
}

/// Concatenated comment text of the doc/attribute run directly above
/// `line` (the same contiguity rule the U1 SAFETY check uses).
pub fn doc_run(lexed: &Lexed, line: usize) -> String {
    let mut out = String::new();
    let mut l = line;
    while l > 1 {
        l -= 1;
        let Some(info) = lexed.lines.get(l) else {
            break;
        };
        if info.has_code && !info.attr_start {
            break;
        }
        if !info.has_code && info.comments.is_empty() {
            break; // blank line ends the run
        }
        for c in info.comments.iter().rev() {
            out.push_str(c);
            out.push('\n');
        }
    }
    out
}

/// Keywords and control constructs that look like `name(...)` in the
/// token stream but are never calls.
fn is_call_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "match"
            | "for"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "unsafe"
            | "else"
            | "let"
            | "mut"
            | "ref"
            | "await"
            | "fn"
            | "impl"
            | "where"
            | "pub"
            | "use"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "const"
            | "static"
            | "type"
            | "break"
            | "continue"
            | "crate"
            | "super"
            | "dyn"
            | "Some"
            | "Ok"
            | "Err"
            | "None"
    )
}

/// Map of local binding → root type name, from params (`x: Type`) and
/// `let` statements (`let x: Type`, `let x = Type::...` / `Type {`).
pub(crate) fn local_types(
    toks: &[SpannedTok],
    params: (usize, usize),
    body: Option<(usize, usize)>,
) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    // Params: segments split on top-level commas.
    let (po, pc) = params;
    let mut seg_start = po + 1;
    let mut depth = 0usize;
    let mut segs: Vec<(usize, usize)> = Vec::new();
    for (k, st) in toks.iter().enumerate().take(pc).skip(po + 1) {
        match st.tok {
            Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => depth = depth.saturating_sub(1),
            Tok::Punct(',') if depth == 0 => {
                segs.push((seg_start, k));
                seg_start = k + 1;
            }
            _ => {}
        }
    }
    if seg_start < pc {
        segs.push((seg_start, pc));
    }
    for (a, b) in segs {
        // `name : [& mut dyn impl]* Type`
        let mut j = a;
        while j < b && matches!(&toks[j].tok, Tok::Ident(s) if s == "mut") {
            j += 1;
        }
        let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) else {
            continue;
        };
        if !matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct(':'))) {
            continue;
        }
        let mut k = j + 2;
        while k < b {
            match &toks[k].tok {
                Tok::Ident(s) if s == "mut" || s == "dyn" || s == "impl" => k += 1,
                Tok::Ident(s) => {
                    map.insert(name.clone(), s.clone());
                    break;
                }
                _ => k += 1,
            }
        }
    }
    // Lets inside the body.
    let Some((bo, bc)) = body else { return map };
    let mut i = bo;
    while i < bc {
        if !matches!(&toks[i].tok, Tok::Ident(s) if s == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if matches!(&toks[j].tok, Tok::Ident(s) if s == "mut") {
            j += 1;
        }
        let Some(Tok::Ident(name)) = toks.get(j).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        let name = name.clone();
        match toks.get(j + 1).map(|t| &t.tok) {
            Some(Tok::Punct(':')) => {
                // Annotated: first type ident after the colon.
                let mut k = j + 2;
                while k < bc {
                    match &toks[k].tok {
                        Tok::Ident(s) if s == "mut" || s == "dyn" || s == "impl" => k += 1,
                        Tok::Ident(s) => {
                            map.entry(name).or_insert_with(|| s.clone());
                            break;
                        }
                        Tok::Punct(';') | Tok::Punct('=') => break,
                        _ => k += 1,
                    }
                }
            }
            Some(Tok::Punct('=')) => {
                // `let x = Type::...` or `let x = Type { ... }`.
                if let Some(Tok::Ident(ty)) = toks.get(j + 2).map(|t| &t.tok) {
                    let ctor_path =
                        matches!(toks.get(j + 3).map(|t| &t.tok), Some(Tok::Punct(':')))
                            || matches!(toks.get(j + 3).map(|t| &t.tok), Some(Tok::Punct('{')));
                    if ctor_path && ty.chars().next().is_some_and(char::is_uppercase) {
                        map.entry(name).or_insert_with(|| ty.clone());
                    }
                }
            }
            _ => {}
        }
        i = j + 1;
    }
    map
}

/// Walk back from the name at `i` collecting `seg::seg::name` segments.
fn path_before(toks: &[SpannedTok], i: usize, name: &str) -> Vec<String> {
    let mut path = vec![name.to_string()];
    let mut j = i;
    while j >= 3
        && matches!(toks[j - 1].tok, Tok::Punct(':'))
        && matches!(toks[j - 2].tok, Tok::Punct(':'))
    {
        match &toks[j - 3].tok {
            Tok::Ident(s) => {
                path.insert(0, s.clone());
                j -= 3;
            }
            _ => break,
        }
    }
    path
}

/// Build the call graph (and per-fn facts) over the parsed workspace.
pub fn build(files: &[ParsedFile], symbols: &Symbols) -> CallGraph {
    let n = symbols.fns.len();
    let mut cg = CallGraph {
        calls: vec![Vec::new(); n],
        rev: vec![Vec::new(); n],
        facts: Vec::with_capacity(n),
    };
    for id in 0..n {
        let node = symbols.node(id);
        let file = &files[node.file];
        let f = &file.ast.fns[node.ast_idx];
        let toks = &file.lexed.toks;
        let own = &file.class.crate_name;

        let docs = doc_run(&file.lexed, f.line);
        let mut facts = FnFacts {
            has_unsafe: f.is_unsafe,
            safety_boundary: docs.contains("SAFETY-BOUNDARY:"),
            panics_doc: docs.contains("# Panics"),
            ordered_merge: docs.contains("lint:ordered-merge"),
            ..FnFacts::default()
        };

        let Some((bo, bc)) = f.body else {
            cg.facts.push(facts);
            continue;
        };
        let locals = local_types(toks, f.params, f.body);
        let mut edges: Vec<(usize, usize)> = Vec::new();

        let mut i = bo;
        while i <= bc {
            let Some(st) = toks.get(i) else { break };
            let line = st.line;
            let Tok::Ident(name) = &st.tok else {
                i += 1;
                continue;
            };
            match name.as_str() {
                "unsafe" => facts.has_unsafe = true,
                "panic" if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('!'))) => {
                    facts.panic_lines.push(line);
                }
                "unwrap" | "expect"
                    if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) =>
                {
                    facts.panic_lines.push(line);
                }
                _ => {}
            }
            // Call shapes: `name(`.
            if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('('))) {
                i += 1;
                continue;
            }
            if is_call_keyword(name) {
                i += 1;
                continue;
            }
            // Definition, not a call (nested `fn name(`).
            if matches!(toks.get(i.wrapping_sub(1)).map(|t| &t.tok), Some(Tok::Ident(k)) if k == "fn")
            {
                i += 1;
                continue;
            }
            let method_recv = matches!(
                toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                Some(Tok::Punct('.'))
            );
            let resolved: Vec<usize> = if method_recv {
                // Receiver hint: `self.m()`, `self.field.m()`, `x.m()`.
                let hint: Option<String> = match toks.get(i.wrapping_sub(2)).map(|t| &t.tok) {
                    Some(Tok::Ident(r)) if r == "self" => f.impl_type.clone(),
                    Some(Tok::Ident(r)) => {
                        let prev_is_dot = matches!(
                            toks.get(i.wrapping_sub(3)).map(|t| &t.tok),
                            Some(Tok::Punct('.'))
                        );
                        if prev_is_dot {
                            // `self.field.m()` → type of the field.
                            let root_is_self = matches!(
                                toks.get(i.wrapping_sub(4)).map(|t| &t.tok),
                                Some(Tok::Ident(s)) if s == "self"
                            );
                            if root_is_self {
                                f.impl_type.as_ref().and_then(|ty| {
                                    symbols
                                        .field_type(files, own, ty, r)
                                        .and_then(|t| t.first().cloned())
                                })
                            } else {
                                None
                            }
                        } else {
                            locals.get(r.as_str()).cloned()
                        }
                    }
                    _ => None,
                };
                symbols.resolve_method_call(own, hint.as_deref(), name)
            } else {
                let path = path_before(toks, i, name);
                // env::var / env::var_os read sites (D6).
                if path.len() >= 2
                    && path[path.len() - 2] == "env"
                    && (name == "var" || name == "var_os")
                {
                    facts.env_lines.push(line);
                }
                // par fan-out sites (D4).
                if name == "par_map" || name == "par_map_range" {
                    let close = matching(toks, i + 1, '(', ')');
                    facts.par_calls.push(ParCall {
                        name_idx: i,
                        args: (i + 1, close),
                    });
                }
                symbols.resolve_path_call(node.file, own, &path)
            };
            for callee in resolved {
                if callee != id {
                    edges.push((callee, line));
                }
            }
            i += 1;
        }
        // Method-style par calls (`pool.par_map(...)`) are rare but cheap
        // to cover: scan once more for `. par_map (`.
        let mut j = bo;
        while j <= bc {
            if let Some(Tok::Ident(nm)) = toks.get(j).map(|t| &t.tok) {
                if (nm == "par_map" || nm == "par_map_range")
                    && matches!(
                        toks.get(j.wrapping_sub(1)).map(|t| &t.tok),
                        Some(Tok::Punct('.'))
                    )
                    && matches!(toks.get(j + 1).map(|t| &t.tok), Some(Tok::Punct('(')))
                {
                    let close = matching(toks, j + 1, '(', ')');
                    facts.par_calls.push(ParCall {
                        name_idx: j,
                        args: (j + 1, close),
                    });
                }
            }
            j += 1;
        }
        edges.sort();
        edges.dedup();
        cg.calls[id] = edges;
        cg.facts.push(facts);
    }
    for id in 0..n {
        for &(callee, _) in &cg.calls[id] {
            cg.rev[callee].push(id);
        }
    }
    for r in &mut cg.rev {
        r.sort();
        r.dedup();
    }
    cg
}

/// Result of a reverse reachability pass: which fns transitively reach a
/// site set, and the next hop toward the nearest site for path evidence.
#[derive(Debug)]
pub struct Reach {
    pub tainted: Vec<bool>,
    next: Vec<Option<usize>>,
}

impl Reach {
    /// The call path from `from` down to a site fn (inclusive).
    pub fn path(&self, from: usize) -> Vec<usize> {
        let mut out = vec![from];
        let mut cur = from;
        while let Some(n) = self.next[cur] {
            out.push(n);
            cur = n;
            if out.len() > 64 {
                break; // cycle guard; paths this deep are not useful
            }
        }
        out
    }
}

/// Reverse BFS from `sites` over caller edges. A fn for which `boundary`
/// returns true is itself marked tainted but does not propagate taint to
/// its callers (it documents/encapsulates the hazard).
pub fn reach(cg: &CallGraph, sites: &[usize], boundary: impl Fn(usize) -> bool) -> Reach {
    let n = cg.calls.len();
    let mut r = Reach {
        tainted: vec![false; n],
        next: vec![None; n],
    };
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for &s in sites {
        if !r.tainted[s] {
            r.tainted[s] = true;
            queue.push_back(s);
        }
    }
    while let Some(f) = queue.pop_front() {
        if boundary(f) {
            continue; // absorbed: callers of a boundary are clean
        }
        for &caller in &cg.rev[f] {
            if !r.tainted[caller] {
                r.tainted[caller] = true;
                r.next[caller] = Some(f);
                queue.push_back(caller);
            }
        }
    }
    r
}

/// Shortest caller chain from some fn satisfying `root` down to `site`
/// (inclusive both ends), if one exists. Used for "reached from public
/// API" evidence on site-anchored findings.
pub fn ancestor_path(
    cg: &CallGraph,
    site: usize,
    root: impl Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    let n = cg.calls.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[site] = true;
    queue.push_back(site);
    while let Some(f) = queue.pop_front() {
        if root(f) {
            // Walk back down to the site.
            let mut path = vec![f];
            let mut cur = f;
            while let Some(p) = parent[cur] {
                path.push(p);
                cur = p;
            }
            return Some(path);
        }
        for &caller in &cg.rev[f] {
            if !seen[caller] {
                seen[caller] = true;
                parent[caller] = Some(f);
                queue.push_back(caller);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;
    use crate::resolve::ParsedFile;
    use crate::rules::FileClass;
    use std::collections::BTreeMap;

    fn ws(sources: &[(&str, &str)]) -> (Vec<ParsedFile>, Symbols, CallGraph) {
        let files: Vec<ParsedFile> = sources
            .iter()
            .map(|(rel, src)| {
                let lexed = lex(src);
                let ast = parse(&lexed);
                ParsedFile {
                    rel: rel.to_string(),
                    class: FileClass::from_rel_path(rel),
                    lexed,
                    ast,
                }
            })
            .collect();
        let symbols = Symbols::build(&files, &BTreeMap::new());
        let cg = build(&files, &symbols);
        (files, symbols, cg)
    }

    fn id_of(s: &Symbols, qual: &str) -> usize {
        s.fns
            .iter()
            .position(|n| n.qual == qual)
            .unwrap_or_else(|| panic!("no fn {qual}"))
    }

    #[test]
    fn free_and_method_edges_resolve() {
        let (_f, s, cg) = ws(&[(
            "crates/core/src/lib.rs",
            "pub struct T;\nimpl T {\n    pub fn helper(&self) { leaf(); }\n}\nfn leaf() {}\npub fn entry() { let t = T; t.helper(); }\n",
        )]);
        let entry = id_of(&s, "core::entry");
        let helper = id_of(&s, "core::T::helper");
        let leaf = id_of(&s, "core::leaf");
        assert!(cg.calls[helper].iter().any(|&(c, _)| c == leaf));
        // Fuzzy method resolution still links `t.helper()`.
        assert!(cg.calls[entry].iter().any(|&(c, _)| c == helper));
    }

    #[test]
    fn facts_collect_unsafe_panic_env_par() {
        let (_f, s, cg) = ws(&[(
            "crates/core/src/lib.rs",
            "pub fn f() {\n    let v = std::env::var(\"X\");\n    let r = v.unwrap();\n    unsafe { op() }\n    sage_util::par_map_range(0, 4, |i| i);\n}\n",
        )]);
        let f = id_of(&s, "core::f");
        let facts = &cg.facts[f];
        assert!(facts.has_unsafe);
        assert_eq!(facts.panic_lines, vec![3]);
        assert_eq!(facts.env_lines, vec![2]);
        assert_eq!(facts.par_calls.len(), 1);
    }

    #[test]
    fn doc_markers_set_boundary_facts() {
        let (_f, s, cg) = ws(&[(
            "crates/nn/src/lib.rs",
            "/// Fast kernel dispatch.\n///\n/// SAFETY-BOUNDARY: feature-detected, length-asserted.\npub fn matmul() { unsafe { k() } }\n\n/// # Panics\n/// On scheduler bugs only.\npub fn par() { x().unwrap(); }\n",
        )]);
        assert!(cg.facts[id_of(&s, "nn::matmul")].safety_boundary);
        assert!(cg.facts[id_of(&s, "nn::par")].panics_doc);
    }

    #[test]
    fn reach_propagates_and_boundaries_absorb() {
        let (_f, s, cg) = ws(&[(
            "crates/core/src/lib.rs",
            "fn site() { unsafe { op() } }\nfn mid() { site(); }\npub fn top() { mid(); }\nfn bsite() { unsafe { op() } }\n/// SAFETY-BOUNDARY: encapsulated.\nfn boundary() { bsite(); }\npub fn safe_top() { boundary(); }\n",
        )]);
        let sites: Vec<usize> = (0..cg.facts.len())
            .filter(|&i| cg.facts[i].has_unsafe)
            .collect();
        let r = reach(&cg, &sites, |i| cg.facts[i].safety_boundary);
        let top = id_of(&s, "core::top");
        let safe_top = id_of(&s, "core::safe_top");
        assert!(r.tainted[top]);
        assert!(!r.tainted[safe_top], "boundary must absorb taint");
        let path = r.path(top);
        let quals: Vec<&str> = path.iter().map(|&i| s.node(i).qual.as_str()).collect();
        assert_eq!(quals, ["core::top", "core::mid", "core::site"]);
    }

    #[test]
    fn ancestor_path_finds_public_root() {
        let (f, s, cg) = ws(&[(
            "crates/core/src/lib.rs",
            "fn site() { let _ = std::env::var(\"X\"); }\nfn mid() { site(); }\npub fn api() { mid(); }\n",
        )]);
        let site = id_of(&s, "core::site");
        let path = ancestor_path(&cg, site, |i| s.fn_item(&f, i).vis == crate::ast::Vis::Pub)
            .expect("public root exists");
        let quals: Vec<&str> = path.iter().map(|&i| s.node(i).qual.as_str()).collect();
        assert_eq!(quals, ["core::api", "core::mid", "core::site"]);
    }
}
