//! Name resolution: per-crate symbol tables, use-resolution, and the
//! crate dependency map.
//!
//! Resolution is *best-effort and over-approximate*: the goal is a call
//! graph good enough for reachability rules, not a compiler. A name that
//! cannot be resolved produces no edge (tolerant), and a method call
//! whose receiver type is unknown resolves to every same-named method
//! visible from the calling crate (conservative). Visibility between
//! crates follows the real `Cargo.toml` dependency edges so a fuzzy
//! method name cannot leak taint from a crate the caller does not even
//! link against.

use crate::ast::{FileAst, FnItem};
use crate::lexer::Lexed;
use crate::rules::FileClass;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

/// One lexed + parsed source file, the unit the workspace passes work on.
#[derive(Debug)]
pub struct ParsedFile {
    pub rel: String,
    pub class: FileClass,
    pub lexed: Lexed,
    pub ast: FileAst,
}

/// Map an extern crate name as it appears in paths (`sage_util`) to the
/// workspace crate short name (`util`). Returns `None` for `std` & co.
pub fn extern_to_crate(name: &str) -> Option<String> {
    if name == "sage" {
        return Some("sage".to_string());
    }
    name.strip_prefix("sage_").map(str::to_string)
}

/// Scan every workspace `Cargo.toml` for intra-workspace dependencies.
/// Returns short-crate-name → direct deps (short names). The parse is a
/// line scan for `sage-*` package references — dependable because the
/// workspace convention names every crate `sage-<dir>`.
pub fn scan_deps(root: &Path) -> io::Result<BTreeMap<String, Vec<String>>> {
    let mut deps = BTreeMap::new();
    let mut scan_one = |crate_name: &str, manifest: &Path| -> io::Result<()> {
        let Ok(text) = std::fs::read_to_string(manifest) else {
            return Ok(());
        };
        let mut list = Vec::new();
        let mut in_deps = false;
        for line in text.lines() {
            let line = line.trim();
            if line.starts_with('[') {
                in_deps = line.contains("dependencies");
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(name) = line.split(['=', '.']).next() {
                let name = name.trim().trim_matches('"');
                if let Some(short) = name.strip_prefix("sage-") {
                    if short != crate_name {
                        list.push(short.to_string());
                    }
                }
            }
        }
        list.sort();
        list.dedup();
        deps.insert(crate_name.to_string(), list);
        Ok(())
    };
    scan_one("sage", &root.join("Cargo.toml"))?;
    let crates_dir = root.join("crates");
    let mut entries: Vec<_> = std::fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for c in entries {
        let name = c
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("")
            .to_string();
        scan_one(&name, &c.join("Cargo.toml"))?;
    }
    Ok(deps)
}

/// A function node in the workspace symbol table.
#[derive(Debug)]
pub struct FnNode {
    /// Index into the workspace's file list.
    pub file: usize,
    /// Index into that file's `ast.fns`.
    pub ast_idx: usize,
    /// Display name `crate::module::Type::name` for findings evidence.
    pub qual: String,
}

/// Workspace-wide symbol tables over a set of parsed files.
#[derive(Debug, Default)]
pub struct Symbols {
    pub fns: Vec<FnNode>,
    /// (crate, fn name) → node ids of free fns.
    free: BTreeMap<(String, String), Vec<usize>>,
    /// (crate, self type, method name) → node ids.
    methods: BTreeMap<(String, String, String), Vec<usize>>,
    /// method name → node ids of every method anywhere (filtered by
    /// crate visibility at query time).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (crate, type name) → (file idx, type idx).
    types: BTreeMap<(String, String), (usize, usize)>,
    /// crate → transitively visible crates (self + deps closure).
    visible: BTreeMap<String, BTreeSet<String>>,
    /// Per file: binding name → full use path.
    use_maps: Vec<BTreeMap<String, Vec<String>>>,
    /// Per file: glob-imported path prefixes.
    globs: Vec<Vec<Vec<String>>>,
}

impl Symbols {
    pub fn build(files: &[ParsedFile], deps: &BTreeMap<String, Vec<String>>) -> Symbols {
        let mut s = Symbols::default();
        // Transitive dep closure per crate (workspace crate count is tiny).
        let crates: BTreeSet<String> = files.iter().map(|f| f.class.crate_name.clone()).collect();
        for c in &crates {
            let mut seen: BTreeSet<String> = BTreeSet::new();
            let mut stack = vec![c.clone()];
            while let Some(n) = stack.pop() {
                if !seen.insert(n.clone()) {
                    continue;
                }
                for d in deps.get(&n).into_iter().flatten() {
                    stack.push(d.clone());
                }
            }
            s.visible.insert(c.clone(), seen);
        }
        // When no dep map is supplied (in-memory analysis), every crate
        // sees every other: conservative, and exact for single-crate sets.
        if deps.is_empty() {
            for c in &crates {
                s.visible.insert(c.clone(), crates.clone());
            }
        }

        for (fi, file) in files.iter().enumerate() {
            let krate = &file.class.crate_name;
            for (ai, f) in file.ast.fns.iter().enumerate() {
                let id = s.fns.len();
                s.fns.push(FnNode {
                    file: fi,
                    ast_idx: ai,
                    qual: qual_name(krate, f),
                });
                match &f.impl_type {
                    Some(ty) => {
                        s.methods
                            .entry((krate.clone(), ty.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        s.by_name.entry(f.name.clone()).or_default().push(id);
                    }
                    None => {
                        s.free
                            .entry((krate.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
            }
            for (ti, t) in file.ast.types.iter().enumerate() {
                s.types
                    .entry((krate.clone(), t.name.clone()))
                    .or_insert((fi, ti));
            }
            let mut um = BTreeMap::new();
            let mut globs = Vec::new();
            for u in &file.ast.uses {
                if u.name == "*" {
                    globs.push(u.path.clone());
                } else {
                    um.insert(u.name.clone(), u.path.clone());
                }
            }
            s.use_maps.push(um);
            s.globs.push(globs);
        }
        s
    }

    pub fn node(&self, id: usize) -> &FnNode {
        &self.fns[id]
    }

    pub fn fn_item<'a>(&self, files: &'a [ParsedFile], id: usize) -> &'a FnItem {
        let n = &self.fns[id];
        &files[n.file].ast.fns[n.ast_idx]
    }

    fn is_visible(&self, from: &str, target: &str) -> bool {
        self.visible.get(from).is_some_and(|v| v.contains(target))
    }

    /// Resolve the root of a use path to a workspace crate short name.
    fn path_crate(&self, own: &str, root: &str) -> Option<String> {
        match root {
            "crate" | "self" | "super" => Some(own.to_string()),
            _ => extern_to_crate(root).filter(|c| self.is_visible(own, c)),
        }
    }

    /// Resolve a free-call path (`[name]` or `[seg, .., name]`) from
    /// `file_idx` in crate `own` to candidate fn node ids.
    pub fn resolve_path_call(&self, file_idx: usize, own: &str, path: &[String]) -> Vec<usize> {
        let Some(name) = path.last() else {
            return Vec::new();
        };
        if path.len() == 1 {
            // Bare name: same-crate free fn, else a use-imported one.
            if let Some(ids) = self.free.get(&(own.to_string(), name.clone())) {
                return ids.clone();
            }
            if let Some(full) = self.use_maps[file_idx].get(name) {
                if full.last() == Some(name) {
                    return self.resolve_absolute(own, full);
                }
            }
            for glob in &self.globs[file_idx] {
                let mut full = glob.clone();
                full.push(name.clone());
                let ids = self.resolve_absolute(own, &full);
                if !ids.is_empty() {
                    return ids;
                }
            }
            return Vec::new();
        }
        // Qualified path. `Type::method` on an imported or local type
        // first, then absolute module paths.
        let head = &path[path.len() - 2];
        if head.chars().next().is_some_and(char::is_uppercase) {
            // The head names a type: local, imported, or dep-visible.
            let type_crate = if self.types.contains_key(&(own.to_string(), head.clone())) {
                Some(own.to_string())
            } else if let Some(full) = self.use_maps[file_idx].get(head) {
                self.path_crate(own, &full[0])
            } else {
                None
            };
            if let Some(c) = type_crate {
                if let Some(ids) = self.methods.get(&(c, head.clone(), name.clone())) {
                    return ids.clone();
                }
            }
            // Fall back to any visible crate defining `head::name`.
            let mut out = Vec::new();
            for ((c, ty, m), ids) in &self.methods {
                if ty == head && m == name && self.is_visible(own, c) {
                    out.extend_from_slice(ids);
                }
            }
            return out;
        }
        self.resolve_absolute(own, path)
    }

    /// Resolve an absolute path (root is a crate name / crate / self).
    fn resolve_absolute(&self, own: &str, path: &[String]) -> Vec<usize> {
        let Some(name) = path.last() else {
            return Vec::new();
        };
        let Some(c) = self.path_crate(own, &path[0]) else {
            return Vec::new(); // std, core, external — no workspace edge
        };
        // `crate::module::Type::method` vs `crate::module::fn`: try the
        // segment before the name as a type first.
        if path.len() >= 2 {
            let head = &path[path.len() - 2];
            if head.chars().next().is_some_and(char::is_uppercase) {
                if let Some(ids) = self.methods.get(&(c.clone(), head.clone(), name.clone())) {
                    return ids.clone();
                }
            }
        }
        self.free
            .get(&(c, name.clone()))
            .cloned()
            .unwrap_or_default()
    }

    /// Resolve a method call `recv.name(...)`. With a receiver type hint
    /// the lookup is exact (crate-visible impls of that type); without
    /// one it falls back to every same-named method visible from `own`.
    pub fn resolve_method_call(&self, own: &str, hint: Option<&str>, name: &str) -> Vec<usize> {
        if let Some(ty) = hint {
            let mut out = Vec::new();
            for ((c, t, m), ids) in &self.methods {
                if t == ty && m == name && self.is_visible(own, c) {
                    out.extend_from_slice(ids);
                }
            }
            return out;
        }
        let mut out = Vec::new();
        for id in self.by_name.get(name).into_iter().flatten() {
            let krate = {
                let n = &self.fns[*id];
                n.qual.split("::").next().unwrap_or("").to_string()
            };
            if self.is_visible(own, &krate) {
                out.push(*id);
            }
        }
        out
    }

    /// Root type idents of a field of `type_name`, searched across the
    /// crates visible from `own`.
    pub fn field_type<'a>(
        &self,
        files: &'a [ParsedFile],
        own: &str,
        type_name: &str,
        field: &str,
    ) -> Option<&'a [String]> {
        for ((c, ty), (fi, ti)) in &self.types {
            if ty == type_name && self.is_visible(own, c) {
                let t = &files[*fi].ast.types[*ti];
                if let Some(f) = t.fields.iter().find(|f| f.name == field) {
                    return Some(&f.ty);
                }
            }
        }
        None
    }

    /// Lookup a type item by name across crates visible from `own`.
    pub fn type_item<'a>(
        &self,
        files: &'a [ParsedFile],
        own: &str,
        type_name: &str,
    ) -> Option<(usize, &'a crate::ast::TypeItem)> {
        for ((c, ty), (fi, ti)) in &self.types {
            if ty == type_name && self.is_visible(own, c) {
                return Some((*fi, &files[*fi].ast.types[*ti]));
            }
        }
        None
    }
}

fn qual_name(krate: &str, f: &FnItem) -> String {
    let mut parts = vec![krate.to_string()];
    parts.extend(f.module.iter().cloned());
    if let Some(t) = &f.impl_type {
        parts.push(t.clone());
    }
    parts.push(f.name.clone());
    parts.join("::")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;

    fn pf(rel: &str, src: &str) -> ParsedFile {
        let lexed = lex(src);
        let ast = parse(&lexed);
        ParsedFile {
            rel: rel.to_string(),
            class: FileClass::from_rel_path(rel),
            lexed,
            ast,
        }
    }

    #[test]
    fn free_fn_and_import_resolution() {
        let files = vec![
            pf(
                "crates/util/src/lib.rs",
                "pub fn par_map_range() {}\npub fn helper() {}\n",
            ),
            pf(
                "crates/core/src/lib.rs",
                "use sage_util::par_map_range;\nfn local() {}\npub fn train() { local(); par_map_range(); }\n",
            ),
        ];
        let mut deps = BTreeMap::new();
        deps.insert("core".to_string(), vec!["util".to_string()]);
        let s = Symbols::build(&files, &deps);
        // Bare local name.
        let ids = s.resolve_path_call(1, "core", &["local".to_string()]);
        assert_eq!(ids.len(), 1);
        assert_eq!(s.node(ids[0]).qual, "core::local");
        // Imported name.
        let ids = s.resolve_path_call(1, "core", &["par_map_range".to_string()]);
        assert_eq!(ids.len(), 1);
        assert_eq!(s.node(ids[0]).qual, "util::par_map_range");
        // Absolute path.
        let ids = s.resolve_path_call(1, "core", &["sage_util".to_string(), "helper".to_string()]);
        assert_eq!(ids.len(), 1);
    }

    #[test]
    fn method_resolution_prefers_type_hint() {
        let files = vec![
            pf(
                "crates/serve/src/table.rs",
                "pub struct Table { slots: Vec<u64> }\nimpl Table {\n    pub fn digest(&self) -> u64 { 0 }\n}\n",
            ),
            pf(
                "crates/distill/src/tree.rs",
                "pub struct Tree;\nimpl Tree {\n    pub fn digest(&self) -> u64 { 1 }\n}\n",
            ),
        ];
        let s = Symbols::build(&files, &BTreeMap::new());
        let exact = s.resolve_method_call("serve", Some("Table"), "digest");
        assert_eq!(exact.len(), 1);
        assert_eq!(s.node(exact[0]).qual, "serve::Table::digest");
        let fuzzy = s.resolve_method_call("serve", None, "digest");
        assert_eq!(fuzzy.len(), 2);
    }

    #[test]
    fn dependency_visibility_bounds_fuzzy_resolution() {
        let files = vec![
            pf(
                "crates/a/src/lib.rs",
                "pub struct A;\nimpl A { pub fn go(&self) {} }\n",
            ),
            pf(
                "crates/b/src/lib.rs",
                "pub struct B;\nimpl B { pub fn go(&self) {} }\n",
            ),
        ];
        let mut deps = BTreeMap::new();
        deps.insert("a".to_string(), Vec::new());
        deps.insert("b".to_string(), Vec::new());
        let s = Symbols::build(&files, &deps);
        // `a` does not depend on `b`: only its own method is visible.
        let ids = s.resolve_method_call("a", None, "go");
        assert_eq!(ids.len(), 1);
        assert_eq!(s.node(ids[0]).qual, "a::A::go");
    }

    #[test]
    fn field_types_resolve_across_crates() {
        let files = vec![
            pf(
                "crates/core/src/pool.rs",
                "pub struct Pool { pub transitions: Vec<u64> }\n",
            ),
            pf("crates/bench/src/lib.rs", "fn x() {}\n"),
        ];
        let mut deps = BTreeMap::new();
        deps.insert("bench".to_string(), vec!["core".to_string()]);
        let s = Symbols::build(&files, &deps);
        let ty = s.field_type(&files, "bench", "Pool", "transitions");
        assert_eq!(ty.map(|t| t[0].as_str()), Some("Vec"));
    }

    #[test]
    fn extern_names_map_to_crate_dirs() {
        assert_eq!(extern_to_crate("sage_util").as_deref(), Some("util"));
        assert_eq!(extern_to_crate("sage").as_deref(), Some("sage"));
        assert_eq!(extern_to_crate("std"), None);
    }
}
