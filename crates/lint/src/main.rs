//! `sage_lint` binary: lint the workspace, print findings, write the
//! machine-readable report, exit non-zero on any unsuppressed finding.
//!
//! Usage: `cargo run -p sage-lint [workspace-root]` (default: the
//! workspace this binary was built from).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        // CARGO_MANIFEST_DIR = crates/lint → workspace root is two up.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let mut report = match sage_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "sage-lint: cannot walk workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    // `SAGE_LINT_TIMINGS=0` zeroes the diagnostic phase timings so two
    // runs of the same tree produce byte-identical reports (the check.sh
    // smoke gate byte-compares reports across thread counts).
    if sage_util::env_cfg::lint_timings().as_deref() == Some("0") {
        for t in &mut report.timings_us {
            t.1 = 0;
        }
    }

    for f in &report.findings {
        println!("{}:{}: {}: {}", f.file, f.line, f.rule, f.msg);
        if !f.path.is_empty() {
            println!("    call path: {}", f.path.join(" -> "));
        }
    }

    // Per-rule counts feed the obs registry so the report's embedded
    // metrics section matches every other pipeline artifact.
    let counts = report.rule_counts();
    for (name, (fired, suppressed)) in &counts {
        let (fired, suppressed) = (*fired as u64, *suppressed as u64);
        match *name {
            "D1" => {
                sage_obs::obs_counter!("lint.unsuppressed.d1").add(fired);
                sage_obs::obs_counter!("lint.suppressed.d1").add(suppressed);
            }
            "D2" => {
                sage_obs::obs_counter!("lint.unsuppressed.d2").add(fired);
                sage_obs::obs_counter!("lint.suppressed.d2").add(suppressed);
            }
            "D3" => {
                sage_obs::obs_counter!("lint.unsuppressed.d3").add(fired);
                sage_obs::obs_counter!("lint.suppressed.d3").add(suppressed);
            }
            "U1" => {
                sage_obs::obs_counter!("lint.unsuppressed.u1").add(fired);
                sage_obs::obs_counter!("lint.suppressed.u1").add(suppressed);
            }
            "D4" => {
                sage_obs::obs_counter!("lint.unsuppressed.d4").add(fired);
                sage_obs::obs_counter!("lint.suppressed.d4").add(suppressed);
            }
            "D5" => {
                sage_obs::obs_counter!("lint.unsuppressed.d5").add(fired);
                sage_obs::obs_counter!("lint.suppressed.d5").add(suppressed);
            }
            "D6" => {
                sage_obs::obs_counter!("lint.unsuppressed.d6").add(fired);
                sage_obs::obs_counter!("lint.suppressed.d6").add(suppressed);
            }
            "U2" => {
                sage_obs::obs_counter!("lint.unsuppressed.u2").add(fired);
                sage_obs::obs_counter!("lint.suppressed.u2").add(suppressed);
            }
            "P1" => {
                sage_obs::obs_counter!("lint.unsuppressed.p1").add(fired);
                sage_obs::obs_counter!("lint.suppressed.p1").add(suppressed);
            }
            "P2" => {
                sage_obs::obs_counter!("lint.unsuppressed.p2").add(fired);
                sage_obs::obs_counter!("lint.suppressed.p2").add(suppressed);
            }
            "O1" => {
                sage_obs::obs_counter!("lint.unsuppressed.o1").add(fired);
                sage_obs::obs_counter!("lint.suppressed.o1").add(suppressed);
            }
            _ => {
                sage_obs::obs_counter!("lint.unsuppressed.a0").add(fired);
                sage_obs::obs_counter!("lint.suppressed.a0").add(suppressed);
            }
        }
    }
    sage_obs::obs_counter!("lint.files_scanned").add(report.files_scanned as u64);

    let mut json = report.to_json();
    if let sage_util::Json::Obj(m) = &mut json {
        m.insert("metrics".to_string(), sage_bench::obs_metrics());
    }
    let out_name = sage_util::env_cfg::lint_out().unwrap_or_else(|| "LINT_report.json".to_string());
    let path = sage_bench::write_report(&out_name, &json);

    let total: usize = counts.values().map(|c| c.0).sum();
    let suppressed: usize = counts.values().map(|c| c.1).sum();
    println!(
        "sage-lint: {} files, {} unsuppressed finding(s), {} suppressed — report: {}",
        report.files_scanned,
        total,
        suppressed,
        path.display()
    );
    if total > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
