//! `sage_lint` binary: lint the workspace, print findings, write the
//! machine-readable report, exit non-zero on any unsuppressed finding.
//!
//! Usage: `cargo run -p sage-lint [workspace-root]` (default: the
//! workspace this binary was built from).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        // CARGO_MANIFEST_DIR = crates/lint → workspace root is two up.
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."),
    };
    let report = match sage_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "sage-lint: cannot walk workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };

    for f in &report.findings {
        println!("{}:{}: {}: {}", f.file, f.line, f.rule, f.msg);
    }

    // Per-rule counts feed the obs registry so the report's embedded
    // metrics section matches every other pipeline artifact.
    let counts = report.rule_counts();
    for (name, (fired, suppressed)) in &counts {
        let (fired, suppressed) = (*fired as u64, *suppressed as u64);
        match *name {
            "D1" => {
                sage_obs::obs_counter!("lint.unsuppressed.d1").add(fired);
                sage_obs::obs_counter!("lint.suppressed.d1").add(suppressed);
            }
            "D2" => {
                sage_obs::obs_counter!("lint.unsuppressed.d2").add(fired);
                sage_obs::obs_counter!("lint.suppressed.d2").add(suppressed);
            }
            "D3" => {
                sage_obs::obs_counter!("lint.unsuppressed.d3").add(fired);
                sage_obs::obs_counter!("lint.suppressed.d3").add(suppressed);
            }
            "U1" => {
                sage_obs::obs_counter!("lint.unsuppressed.u1").add(fired);
                sage_obs::obs_counter!("lint.suppressed.u1").add(suppressed);
            }
            "P1" => {
                sage_obs::obs_counter!("lint.unsuppressed.p1").add(fired);
                sage_obs::obs_counter!("lint.suppressed.p1").add(suppressed);
            }
            "O1" => {
                sage_obs::obs_counter!("lint.unsuppressed.o1").add(fired);
                sage_obs::obs_counter!("lint.suppressed.o1").add(suppressed);
            }
            _ => {
                sage_obs::obs_counter!("lint.unsuppressed.a0").add(fired);
                sage_obs::obs_counter!("lint.suppressed.a0").add(suppressed);
            }
        }
    }
    sage_obs::obs_counter!("lint.files_scanned").add(report.files_scanned as u64);

    let mut json = report.to_json();
    if let sage_util::Json::Obj(m) = &mut json {
        m.insert("metrics".to_string(), sage_bench::obs_metrics());
    }
    let path = sage_bench::write_report("LINT_report.json", &json);

    let total: usize = counts.values().map(|c| c.0).sum();
    let suppressed: usize = counts.values().map(|c| c.1).sum();
    println!(
        "sage-lint: {} files, {} unsuppressed finding(s), {} suppressed — report: {}",
        report.files_scanned,
        total,
        suppressed,
        path.display()
    );
    if total > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
