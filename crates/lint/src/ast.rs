//! Item-level AST for the static analyzer.
//!
//! The parser ([`crate::parse`]) lowers a token stream into these nodes.
//! Bodies are *not* lowered to expression trees: a function body is a
//! token index range into the file's [`crate::lexer::Lexed`] stream, and
//! the interprocedural rules scan those ranges with small pattern
//! helpers. That keeps the parser tolerant — anything it cannot shape
//! into an item is skipped, never fatal — while still giving the rules
//! exactly the structure they need: who defines what, who is public,
//! what types fields have, and what every `use` binds.

/// Item visibility. `pub(crate)`, `pub(super)` and `pub(in ...)` all
/// count as [`Vis::PubScoped`]: visible beyond the item's module but not
/// part of the workspace-public API surface that U2/P2 report on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    Pub,
    PubScoped,
    Private,
}

/// A `fn` item: free function, impl method, or trait default method.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    pub vis: Vis,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Module path within the crate (empty at crate root).
    pub module: Vec<String>,
    /// Self type name when the fn is an impl/trait method.
    pub impl_type: Option<String>,
    /// Token index range `[open, close]` of the parameter parens.
    pub params: (usize, usize),
    /// Token index range `[open_brace, close_brace]` of the body, when
    /// the fn has one (trait method signatures do not).
    pub body: Option<(usize, usize)>,
    /// The item sits under a `#[cfg(test)]` item or module.
    pub in_test: bool,
    /// Declared with the `unsafe` qualifier.
    pub is_unsafe: bool,
}

/// One field of a struct: name plus the identifiers of its type, in
/// source order (`hidden: Vec<f64>` → `["Vec", "f64"]`).
#[derive(Debug, Clone)]
pub struct Field {
    pub name: String,
    pub ty: Vec<String>,
}

/// A `struct` or `enum` item (enums carry no fields here; the rules only
/// need field types for struct-receiver resolution).
#[derive(Debug, Clone)]
pub struct TypeItem {
    pub name: String,
    pub line: usize,
    pub module: Vec<String>,
    pub fields: Vec<Field>,
    pub in_test: bool,
}

/// One leaf binding produced by flattening a `use` tree:
/// `use sage_util::{par_map, Json as J};` yields
/// `(["sage_util", "par_map"], "par_map")` and
/// `(["sage_util", "Json"], "J")`. Glob imports bind the name `*`.
#[derive(Debug, Clone)]
pub struct UseLeaf {
    pub path: Vec<String>,
    pub name: String,
    pub in_test: bool,
}

/// Everything the parser extracted from one file.
#[derive(Debug, Default)]
pub struct FileAst {
    pub fns: Vec<FnItem>,
    pub types: Vec<TypeItem>,
    pub uses: Vec<UseLeaf>,
}

impl FileAst {
    /// The fn whose body token range contains token index `ti`, if any.
    /// Bodies never overlap except trait/impl nesting is absent at the
    /// token level, so the innermost (smallest) match wins.
    pub fn fn_at(&self, ti: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter_map(|f| f.body.map(|(a, b)| (f, (a, b))))
            .filter(|&(_, (a, b))| ti >= a && ti <= b)
            .min_by_key(|&(_, (a, b))| b - a)
            .map(|(f, _)| f)
    }
}
