//! The rule engine: line-oriented rules applied to one lexed file, plus
//! interprocedural rules applied to the whole parsed workspace, and the
//! `// lint:allow(...)` suppression machinery shared by both.
//!
//! | Rule | What it rejects | Why |
//! |------|-----------------|-----|
//! | D1 | `HashMap`/`HashSet`/`RandomState` | hash iteration order is seeded per process — replay-breaking |
//! | D2 | `Instant`/`SystemTime`/`thread::spawn`/`mpsc` outside obs, `util::par`, bench | wall clocks and free-running threads leak scheduling into results |
//! | D3 | `rand::`, `thread_rng`, `OsRng`, `getrandom`, ... | ambient entropy bypasses the seeded `sage_util::Rng` |
//! | D4 | float accumulation into captured state inside `par_map`/`par_map_range` closures | cross-task `+=`/`sum()` on shared floats is scheduling-ordered; partials must flow through the pool's ordered reduction |
//! | D5 | digest fns iterating types not marked `// lint:stable-order`; `fold_digest` called off ordered-merge paths | a digest folded in unstable order is a different digest per run |
//! | D6 | `std::env::var` outside `util::env_cfg`, bench, and tests | ambient configuration read mid-pipeline makes results depend on the environment, invisibly |
//! | U1 | `unsafe` without a `// SAFETY:` comment | every unsafe site must state its proof obligations |
//! | U2 | public fns transitively reaching `unsafe` with no `// SAFETY-BOUNDARY:` doc on the way | the encapsulating fn must own the invariant, with the call path as evidence |
//! | P1 | `unwrap()`/`expect(`/`panic!` in library non-test code | library code propagates errors; panics are for provable invariants only |
//! | P2 | public fns transitively reaching a panic site with no `/// # Panics` doc on the way | callers deserve the contract; the call path is the evidence |
//! | O1 | `obs_counter!`/`obs_gauge!`/`obs_hist!` names not in `snake.dot.case` | one metric namespace: lowercase dot-separated segments, grep-able and collision-free |
//! | A0 | malformed or unused `lint:allow` | suppressions must carry a reason and actually suppress something |
//!
//! D1–D3, U1, P1, O1 and A0 are line rules: one lexed file in, findings
//! out. D4–D6, U2 and P2 are interprocedural: they run over a [`Ws`]
//! (parsed files + symbol table + call graph, see [`crate::resolve`] and
//! [`crate::callgraph`]) and their findings carry the call path that
//! proves reachability.
//!
//! Suppression syntax: `// lint:allow(RULE[,RULE...]): reason`. On a line
//! with code it covers that line; on a comment-only line it covers the
//! next line that has code. The reason is mandatory. Interprocedural
//! findings anchor at a source line (the site, or the public fn's `fn`
//! line for U2/P2) and are suppressed by an allow targeting that line.
//!
//! Boundary markers the interprocedural rules honour, all plain comments:
//! `// SAFETY-BOUNDARY: ...` in the doc run above a fn absorbs U2 taint
//! (the fn owns the unsafe invariant); a `/// # Panics` doc section
//! absorbs P2 taint (the panic is contracted); `// lint:ordered-merge`
//! above a fn sanctions `fold_digest` calls inside it (D5); and
//! `// lint:stable-order` above a type marks its iteration order as
//! insertion-independent (D5).

use crate::ast::{FnItem, Vis};
use crate::callgraph::{self, CallGraph};
use crate::lexer::{lex, Lexed, SpannedTok, Tok};
use crate::resolve::{ParsedFile, Symbols};
use std::fmt;

/// Rule identifiers. `A0` is the meta-rule about suppressions themselves
/// and can never be suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    U1,
    U2,
    P1,
    P2,
    O1,
    A0,
}

impl Rule {
    pub const ALL: [Rule; 12] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::D4,
        Rule::D5,
        Rule::D6,
        Rule::U1,
        Rule::U2,
        Rule::P1,
        Rule::P2,
        Rule::O1,
        Rule::A0,
    ];

    /// The interprocedural rules, in the order the workspace pass runs
    /// (and times) them.
    pub const INTERPROCEDURAL: [Rule; 5] = [Rule::D4, Rule::D5, Rule::D6, Rule::U2, Rule::P2];

    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::D5 => "D5",
            Rule::D6 => "D6",
            Rule::U1 => "U1",
            Rule::U2 => "U2",
            Rule::P1 => "P1",
            Rule::P2 => "P2",
            Rule::O1 => "O1",
            Rule::A0 => "A0",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "D5" => Some(Rule::D5),
            "D6" => Some(Rule::D6),
            "U1" => Some(Rule::U1),
            "U2" => Some(Rule::U2),
            "P1" => Some(Rule::P1),
            "P2" => Some(Rule::P2),
            "O1" => Some(Rule::O1),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An unsuppressed rule violation. `path` is the call-path evidence for
/// interprocedural findings (qualified fn names, caller first, site
/// last); empty for line-rule findings.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub msg: String,
    pub path: Vec<String>,
}

/// A violation covered by a `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub reason: String,
}

/// Result of analysing one file (or, accumulated, a whole workspace).
#[derive(Debug, Default)]
pub struct FileOutcome {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Short crate directory name (`util`, `serve`, `bench`, ... or
    /// `sage` for the root facade crate).
    pub crate_name: String,
    /// File lives under a `tests/` directory (integration tests).
    pub in_tests_dir: bool,
    /// The one file allowed to own threads: `crates/util/src/par.rs`.
    pub is_util_par: bool,
    /// The one file allowed to read ambient configuration:
    /// `crates/util/src/env_cfg.rs` (the D6 config layer).
    pub is_env_cfg: bool,
}

impl FileClass {
    /// Derive the class from a workspace-relative path such as
    /// `crates/serve/src/runtime.rs` or `src/lib.rs`.
    pub fn from_rel_path(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = match parts.first() {
            Some(&"crates") if parts.len() > 1 => parts[1].to_string(),
            _ => "sage".to_string(),
        };
        FileClass {
            crate_name,
            in_tests_dir: parts.contains(&"tests"),
            is_util_par: rel.ends_with("crates/util/src/par.rs") || rel == "crates/util/src/par.rs",
            is_env_cfg: rel.ends_with("crates/util/src/env_cfg.rs")
                || rel == "crates/util/src/env_cfg.rs",
        }
    }

    fn applies(&self, rule: Rule, in_test_region: bool) -> bool {
        match rule {
            // Benches are timing tools by nature: exempt from the hash-map
            // and wall-clock rules (their reports are not digest-covered).
            Rule::D1 => self.crate_name != "bench",
            Rule::D2 => self.crate_name != "bench" && self.crate_name != "obs" && !self.is_util_par,
            // Ambient entropy is never acceptable, benches included.
            Rule::D3 => true,
            Rule::U1 => true,
            // Library non-test code only.
            Rule::P1 => self.crate_name != "bench" && !self.in_tests_dir && !in_test_region,
            // Metric names share one namespace; the rule applies everywhere.
            Rule::O1 => true,
            Rule::A0 => true,
            // Interprocedural rules filter at the workspace pass (they
            // need fn-level context); by the time a finding is emitted it
            // already applies.
            Rule::D4 | Rule::D5 | Rule::D6 | Rule::U2 | Rule::P2 => true,
        }
    }
}

/// One parsed `lint:allow` annotation, kept alive for the whole workspace
/// pass so interprocedural findings can consume it before the unused
/// check (A0) runs.
pub(crate) struct Allow {
    pub(crate) line: usize,
    pub(crate) target: usize,
    pub(crate) rules: Vec<Rule>,
    pub(crate) reason: String,
    pub(crate) used: bool,
}

/// Route one violation through the file's allows: suppressed if an allow
/// targets its line and rule, a finding otherwise.
pub(crate) fn emit(
    file: &str,
    allows: &mut [Allow],
    out: &mut FileOutcome,
    line: usize,
    rule: Rule,
    msg: String,
    path: Vec<String>,
) {
    for a in allows.iter_mut() {
        if a.target == line && a.rules.contains(&rule) {
            a.used = true;
            out.suppressed.push(Suppressed {
                file: file.to_string(),
                line,
                rule,
                reason: a.reason.clone(),
            });
            return;
        }
    }
    out.findings.push(Finding {
        file: file.to_string(),
        line,
        rule,
        msg,
        path,
    });
}

/// Report every allow that suppressed nothing as an A0 finding. Call
/// only after every pass that could consume an allow has run.
pub(crate) fn finish_allows(file: &str, allows: &[Allow], out: &mut FileOutcome) {
    for a in allows.iter().filter(|a| !a.used) {
        out.findings.push(Finding {
            file: file.to_string(),
            line: a.line,
            rule: Rule::A0,
            msg: format!(
                "unused suppression `lint:allow({})` — nothing on line {} fires it (A0)",
                a.rules
                    .iter()
                    .map(|r| r.name())
                    .collect::<Vec<_>>()
                    .join(","),
                a.target
            ),
            path: Vec::new(),
        });
    }
}

/// The line rules (D1–D3, U1, P1, O1) over one lexed file.
pub(crate) fn line_pass(
    file: &str,
    class: &FileClass,
    lexed: &Lexed,
    allows: &mut [Allow],
    out: &mut FileOutcome,
) {
    let test_regions = test_regions(lexed);
    let in_test = |line: usize| test_regions.iter().any(|&(a, b)| line >= a && line <= b);

    let toks = &lexed.toks;
    for (i, st) in toks.iter().enumerate() {
        let Tok::Ident(id) = &st.tok else { continue };
        let line = st.line;
        let mut hit = |rule: Rule, msg: String, out: &mut FileOutcome| {
            if class.applies(rule, in_test(line)) {
                emit(file, allows, out, line, rule, msg, Vec::new());
            }
        };
        match id.as_str() {
            "HashMap" | "HashSet" | "RandomState" => hit(
                Rule::D1,
                format!("`{id}` iterates in per-process seeded order; use BTreeMap/BTreeSet or a slab (D1)"),
                out,
            ),
            "Instant" | "SystemTime" => hit(
                Rule::D2,
                format!("wall clock `{id}` outside sage-obs/util::par/bench leaks real time into results (D2)"),
                out,
            ),
            "mpsc" => hit(
                Rule::D2,
                "`mpsc` channels order messages by scheduling; use util::par's ordered reduction (D2)".into(),
                out,
            ),
            "thread" if path_seq(toks, i, &["spawn"]) => hit(
                Rule::D2,
                "free-running `thread::spawn` escapes the deterministic worker pool (D2)".into(),
                out,
            ),
            "rand" if followed_by_path_sep(toks, i) => hit(
                Rule::D3,
                "the `rand` crate draws ambient entropy; all RNG flows through sage_util::Rng (D3)".into(),
                out,
            ),
            "thread_rng" | "from_entropy" | "getrandom" | "OsRng" | "StdRng" | "SmallRng" => hit(
                Rule::D3,
                format!("`{id}` is ambient entropy; seed a sage_util::Rng instead (D3)"),
                out,
            ),
            "unsafe" if !safety_comment_covers(lexed, line) => hit(
                Rule::U1,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines (U1)".into(),
                out,
            ),
            "unwrap" if next_is(toks, i, '(') => hit(
                Rule::P1,
                "`unwrap()` in library code; propagate a Result or annotate the invariant (P1)".into(),
                out,
            ),
            "expect" if next_is(toks, i, '(') => hit(
                Rule::P1,
                "`expect()` in library code; propagate a Result or annotate the invariant (P1)".into(),
                out,
            ),
            "panic" if next_is(toks, i, '!') => hit(
                Rule::P1,
                "`panic!` in library code; return an error or annotate the invariant (P1)".into(),
                out,
            ),
            "obs_counter" | "obs_gauge" | "obs_hist" => {
                if let Some(name) = macro_str_arg(toks, i) {
                    if !is_metric_name(&name) {
                        hit(
                            Rule::O1,
                            format!(
                                "metric name `{name}` in `{id}!` is not snake.dot.case \
                                 (lowercase `[a-z0-9_]` segments, >= 2, dot-separated) (O1)"
                            ),
                            out,
                        );
                    }
                }
            }
            _ => {}
        }
    }
}

/// Analyse one file's source under the given class — line rules only.
///
/// This is the single-file entry point (fixtures, ad-hoc checks). The
/// workspace pipeline in [`crate::analyze_sources`] reuses the same
/// pieces but defers the unused-allow check until the interprocedural
/// rules have had their chance to consume suppressions.
pub fn analyze(file: &str, class: &FileClass, src: &str) -> FileOutcome {
    let lexed = lex(src);
    let mut out = FileOutcome::default();
    let mut allows = parse_allows(file, &lexed, &mut out);
    line_pass(file, class, &lexed, &mut allows, &mut out);
    finish_allows(file, &allows, &mut out);
    out.findings.sort_by_key(|f| (f.line, f.rule));
    out
}

// ---------------------------------------------------------------------
// Interprocedural rules
// ---------------------------------------------------------------------

/// The parsed workspace the interprocedural rules run over.
pub struct Ws<'a> {
    pub files: &'a [ParsedFile],
    pub symbols: &'a Symbols,
    pub cg: &'a CallGraph,
}

/// An interprocedural violation before suppression routing. `file_idx`
/// indexes [`Ws::files`]; `path` is qualified-fn-name evidence.
#[derive(Debug)]
pub struct RawFinding {
    pub file_idx: usize,
    pub line: usize,
    pub rule: Rule,
    pub msg: String,
    pub path: Vec<String>,
}

impl<'a> Ws<'a> {
    fn item(&self, id: usize) -> &'a FnItem {
        self.symbols.fn_item(self.files, id)
    }

    fn qual(&self, id: usize) -> &str {
        &self.symbols.node(id).qual
    }

    fn quals(&self, ids: &[usize]) -> Vec<String> {
        ids.iter().map(|&i| self.qual(i).to_string()).collect()
    }

    fn class(&self, id: usize) -> &FileClass {
        &self.files[self.symbols.node(id).file].class
    }

    /// A fn whose findings (or sites) the reachability rules consider:
    /// library code, not benches, not tests.
    fn lib_fn(&self, id: usize) -> bool {
        let c = self.class(id);
        c.crate_name != "bench" && !c.in_tests_dir && !self.item(id).in_test
    }

    fn run(&self, rule: Rule) -> Vec<RawFinding> {
        match rule {
            Rule::D4 => rule_d4(self),
            Rule::D5 => rule_d5(self),
            Rule::D6 => rule_d6(self),
            Rule::U2 => rule_u2(self),
            Rule::P2 => rule_p2(self),
            _ => Vec::new(),
        }
    }
}

/// Run one interprocedural rule over the workspace. Dispatch point for
/// the timed per-rule loop in [`crate::analyze_sources`].
pub fn run_rule(ws: &Ws, rule: Rule) -> Vec<RawFinding> {
    ws.run(rule)
}

/// D4 — float accumulation into captured state inside closures passed to
/// `par_map` / `par_map_range`.
///
/// The pool's reduction is ordered, so the deterministic way to
/// accumulate across tasks is to *return* per-task partials. Mutating a
/// captured float accumulator (`acc += ...`, `*slot += ...`) or summing
/// a captured buffer that the fn also writes makes the result depend on
/// task scheduling. Closure-local accumulators are fine — each task owns
/// its own.
pub fn rule_d4(ws: &Ws) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for id in 0..ws.cg.facts.len() {
        let facts = &ws.cg.facts[id];
        if facts.par_calls.is_empty() || !ws.lib_fn(id) {
            continue;
        }
        let node = ws.symbols.node(id);
        let f = ws.item(id);
        let toks = &ws.files[node.file].lexed.toks;
        for pc in &facts.par_calls {
            let helper = match &toks[pc.name_idx].tok {
                Tok::Ident(s) => s.clone(),
                _ => continue,
            };
            for cs in closures_in(toks, pc.args.0, pc.args.1) {
                let locals = closure_locals(toks, &cs);
                d4_scan_closure(ws, node.file, id, f, toks, &cs, &locals, &helper, &mut out);
            }
        }
    }
    out
}

struct ClosureSpan {
    params: (usize, usize),
    body: (usize, usize),
}

/// Top-level closures among the arguments of a call: `|p| expr`,
/// `move |p| { ... }`, `|| f()`. Nested closures stay inside the
/// enclosing closure's body span.
fn closures_in(toks: &[SpannedTok], open: usize, close: usize) -> Vec<ClosureSpan> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close {
        if toks[i].tok != Tok::Punct('|') {
            i += 1;
            continue;
        }
        let pa = i;
        let pb = if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('|'))) {
            i + 1
        } else {
            let mut j = i + 1;
            while j < close && toks[j].tok != Tok::Punct('|') {
                j += 1;
            }
            j
        };
        if pb >= close {
            break;
        }
        let bs = pb + 1;
        let be;
        if matches!(toks.get(bs).map(|t| &t.tok), Some(Tok::Punct('{'))) {
            let e = crate::parse::matching(toks, bs, '{', '}');
            be = e.min(close.saturating_sub(1)).max(bs);
            i = be + 1;
        } else {
            let mut j = bs;
            let mut depth = 0i32;
            while j < close {
                match &toks[j].tok {
                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                    Tok::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            be = j.saturating_sub(1).max(bs);
            i = j + 1;
        }
        out.push(ClosureSpan {
            params: (pa, pb),
            body: (bs, be),
        });
    }
    out
}

/// Names bound inside the closure: its params, `let` bindings, for-loop
/// variables, and nested closures' params. Anything else referenced in
/// the body is captured from the enclosing fn.
fn closure_locals(toks: &[SpannedTok], cs: &ClosureSpan) -> Vec<String> {
    let mut out = Vec::new();
    for st in toks.iter().take(cs.params.1).skip(cs.params.0 + 1) {
        if let Tok::Ident(s) = &st.tok {
            if s != "mut" {
                out.push(s.clone());
            }
        }
    }
    let (bs, be) = cs.body;
    let mut k = bs;
    while k <= be {
        match &toks[k].tok {
            Tok::Ident(s) if s == "let" => {
                let mut j = k + 1;
                while j <= be {
                    match &toks[j].tok {
                        Tok::Punct('=') | Tok::Punct(';') | Tok::Punct(':') => break,
                        Tok::Ident(n) if n != "mut" => out.push(n.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                k = j + 1;
            }
            Tok::Ident(s) if s == "for" => {
                let mut j = k + 1;
                while j <= be && j < k + 12 {
                    match &toks[j].tok {
                        Tok::Ident(n) if n == "in" => break,
                        Tok::Ident(n) if n != "mut" => out.push(n.clone()),
                        _ => {}
                    }
                    j += 1;
                }
                k = j;
            }
            Tok::Punct('|') => {
                let mut j = k + 1;
                while j <= be && j < k + 16 && toks[j].tok != Tok::Punct('|') {
                    if let Tok::Ident(n) = &toks[j].tok {
                        if n != "mut" {
                            out.push(n.clone());
                        }
                    }
                    j += 1;
                }
                k = j + 1;
            }
            _ => k += 1,
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn d4_scan_closure(
    ws: &Ws,
    file_idx: usize,
    id: usize,
    f: &FnItem,
    toks: &[SpannedTok],
    cs: &ClosureSpan,
    locals: &[String],
    helper: &str,
    out: &mut Vec<RawFinding>,
) {
    let captured = |root: &str| !locals.iter().any(|l| l == root) && root != "self";
    let (bs, be) = cs.body;
    let mut i = bs;
    while i <= be {
        match &toks[i].tok {
            // `root += ...` / `root -= ...` / `*slot += ...` on a
            // captured float.
            Tok::Punct(op @ ('+' | '-' | '*' | '/'))
                if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('='))) =>
            {
                // `*=`-the-operator vs `*expr` deref: an lvalue must end
                // right before the op, so chain_root decides.
                if let Some(root) = chain_root(toks, i) {
                    if captured(&root) && float_evidence(toks, f, &root) {
                        out.push(RawFinding {
                            file_idx,
                            line: toks[i].line,
                            rule: Rule::D4,
                            msg: format!(
                                "float accumulator `{root}` captured by a closure passed to \
                                 `{helper}` is mutated with `{op}=` across tasks in `{}`; return \
                                 per-task partials and combine them through the pool's ordered \
                                 reduction (D4)",
                                ws.qual(id)
                            ),
                            path: vec![ws.qual(id).to_string()],
                        });
                    }
                }
                i += 2;
                continue;
            }
            // `.sum::<f64>()` / `.product()` over a captured buffer the
            // fn also mutates: read order meets write order.
            Tok::Ident(nm)
                if (nm == "sum" || nm == "product")
                    && matches!(
                        toks.get(i.wrapping_sub(1)).map(|t| &t.tok),
                        Some(Tok::Punct('.'))
                    ) =>
            {
                let (ty, has_tf) = turbofish_ty(toks, i);
                let callish =
                    has_tf || matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('(')));
                if callish {
                    if let Some(root) = chain_root(toks, i - 1) {
                        let floaty = matches!(ty.as_deref(), Some("f32") | Some("f64"))
                            || (!has_tf && float_evidence(toks, f, &root));
                        if captured(&root) && floaty && mutated_in_fn(toks, f, &root) {
                            out.push(RawFinding {
                                file_idx,
                                line: toks[i].line,
                                rule: Rule::D4,
                                msg: format!(
                                    "`.{nm}()` over captured float state `{root}` inside a \
                                     `{helper}` closure in `{}` reads a buffer the fn also \
                                     writes; fold per-task partials through the pool's ordered \
                                     reduction instead (D4)",
                                    ws.qual(id)
                                ),
                                path: vec![ws.qual(id).to_string()],
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// `name ::<Ty>` turbofish right after token `i`: (type, present).
fn turbofish_ty(toks: &[SpannedTok], i: usize) -> (Option<String>, bool) {
    let is =
        |k: usize, c: char| matches!(toks.get(k).map(|t| &t.tok), Some(Tok::Punct(p)) if *p == c);
    if is(i + 1, ':') && is(i + 2, ':') && is(i + 3, '<') {
        if let Some(Tok::Ident(t)) = toks.get(i + 4).map(|t| &t.tok) {
            return (Some(t.clone()), true);
        }
        return (None, true);
    }
    (None, false)
}

/// Index of the `open` punct matching the `close` punct at `close_idx`,
/// scanning backwards.
fn matching_back(toks: &[SpannedTok], close_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = close_idx;
    loop {
        match &toks[k].tok {
            Tok::Punct(c) if *c == close => depth += 1,
            Tok::Punct(o) if *o == open => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
}

/// Root identifier of the receiver/lvalue chain ending just before token
/// `after` — `buf.iter().map(..)` → `buf`, `*slot` → `slot`,
/// `acc[i]` → `acc`. `None` when the chain starts with something that is
/// not a plain identifier.
fn chain_root(toks: &[SpannedTok], after: usize) -> Option<String> {
    let mut j = after;
    for _ in 0..64 {
        let k = j.checked_sub(1)?;
        match &toks[k].tok {
            Tok::Punct(')') => j = matching_back(toks, k, '(', ')')?,
            Tok::Punct(']') => j = matching_back(toks, k, '[', ']')?,
            Tok::Punct('.') => j = k,
            Tok::Ident(name) => {
                let prev_dot = k >= 1 && toks[k - 1].tok == Tok::Punct('.');
                if prev_dot {
                    j = k;
                } else {
                    return Some(name.clone());
                }
            }
            _ => return None,
        }
    }
    None
}

/// Is `root` declared (let or param) with float evidence in `f` — an
/// `f32`/`f64` annotation or a float literal in its initializer?
fn float_evidence(toks: &[SpannedTok], f: &FnItem, root: &str) -> bool {
    let end = f
        .body
        .map_or(f.params.1, |b| b.1)
        .min(toks.len().saturating_sub(1));
    let in_params = |k: usize| k >= f.params.0 && k <= f.params.1;
    let mut i = f.params.0;
    while i <= end {
        let Tok::Ident(s) = &toks[i].tok else {
            i += 1;
            continue;
        };
        if s != root {
            i += 1;
            continue;
        }
        let prev = toks.get(i.wrapping_sub(1)).map(|t| &t.tok);
        let prev2 = toks.get(i.wrapping_sub(2)).map(|t| &t.tok);
        let declish = matches!(prev, Some(Tok::Ident(p)) if p == "let")
            || (matches!(prev, Some(Tok::Ident(p)) if p == "mut")
                && matches!(prev2, Some(Tok::Ident(p)) if p == "let"))
            || (in_params(i) && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct(':'))));
        if declish {
            let lim = (i + 48).min(end);
            let mut j = i + 1;
            while j <= lim {
                match &toks[j].tok {
                    Tok::Punct(';') => break,
                    Tok::Punct(',') if in_params(j) => break,
                    Tok::Ident(t) if t == "f32" || t == "f64" => return true,
                    Tok::Num(lx) if is_float_lexeme(lx) => return true,
                    _ => {}
                }
                j += 1;
            }
        }
        i += 1;
    }
    false
}

fn is_float_lexeme(s: &str) -> bool {
    s.contains('.') || s.ends_with("f32") || s.ends_with("f64")
}

/// Does `f`'s body write `root` anywhere (assignment, compound
/// assignment — possibly through an index — or an `&mut` borrow)?
fn mutated_in_fn(toks: &[SpannedTok], f: &FnItem, root: &str) -> bool {
    let Some((bo, bc)) = f.body else { return false };
    let at = |k: usize| toks.get(k).map(|t| &t.tok);
    let mut i = bo;
    while i <= bc {
        if let Some(Tok::Ident(s)) = at(i) {
            if s == root {
                // Declarations are not mutations.
                let decl = matches!(at(i.wrapping_sub(1)), Some(Tok::Ident(p)) if p == "let" || p == "mut");
                if !decl {
                    let mut k = i + 1;
                    // Step over one index expression: `root[expr] op= ...`.
                    if matches!(at(k), Some(Tok::Punct('['))) {
                        k = crate::parse::matching(toks, k, '[', ']') + 1;
                    }
                    let compound = matches!(at(k), Some(Tok::Punct(c)) if matches!(c, '+' | '-' | '*' | '/'))
                        && matches!(at(k + 1), Some(Tok::Punct('=')));
                    let plain = matches!(at(k), Some(Tok::Punct('=')))
                        && !matches!(at(k + 1), Some(Tok::Punct('=')))
                        && !matches!(
                            at(k.wrapping_sub(2)),
                            Some(
                                Tok::Punct('=')
                                    | Tok::Punct('!')
                                    | Tok::Punct('<')
                                    | Tok::Punct('>')
                            )
                        );
                    let amp_mut = matches!(at(i.wrapping_sub(1)), Some(Tok::Ident(m)) if m == "mut")
                        && matches!(at(i.wrapping_sub(2)), Some(Tok::Punct('&')));
                    if compound || plain || amp_mut {
                        return true;
                    }
                }
            }
        }
        i += 1;
    }
    false
}

/// D5 — the digest contract, two halves.
///
/// (a) A fn whose name contains `digest` may only iterate workspace
/// types whose doc run carries `// lint:stable-order` (the author's
/// promise that iteration order is insertion- and scheduling-
/// independent). Std sequences resolve to no workspace type and pass.
///
/// (b) A call to a fn whose name contains `fold_digest` must come from a
/// digest-scoped fn or one marked `// lint:ordered-merge` — fold sites
/// are where per-part digests combine, and that combination must happen
/// on the ordered-merge path.
pub fn rule_d5(ws: &Ws) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for id in 0..ws.cg.facts.len() {
        if !ws.lib_fn(id) {
            continue;
        }
        let f = ws.item(id);
        let node = ws.symbols.node(id);
        let file = &ws.files[node.file];
        let toks = &file.lexed.toks;

        // (a) iteration discipline inside digest fns.
        if f.name.contains("digest") {
            if let Some((bo, bc)) = f.body {
                let locals = callgraph::local_types(toks, f.params, f.body);
                let mut i = bo;
                while i <= bc {
                    if let Some(ty) = iterated_type(ws, file, f, toks, &locals, i, bc) {
                        if let Some((tfi, titem)) =
                            ws.symbols.type_item(ws.files, &file.class.crate_name, &ty)
                        {
                            let marked = callgraph::doc_run(&ws.files[tfi].lexed, titem.line)
                                .contains("lint:stable-order");
                            if !marked {
                                out.push(RawFinding {
                                    file_idx: node.file,
                                    line: toks[i].line,
                                    rule: Rule::D5,
                                    msg: format!(
                                        "digest fn `{}` iterates `{ty}`, which is not marked \
                                         `// lint:stable-order`; a digest folded in unstable \
                                         order is a different digest per run (D5)",
                                        ws.qual(id)
                                    ),
                                    path: vec![ws.qual(id).to_string()],
                                });
                            }
                        }
                    }
                    i += 1;
                }
            }
        }

        // (b) fold_digest call discipline.
        for &(callee, line) in &ws.cg.calls[id] {
            if !ws.item(callee).name.contains("fold_digest") {
                continue;
            }
            if f.name.contains("digest") || ws.cg.facts[id].ordered_merge {
                continue;
            }
            let path = callgraph::ancestor_path(ws.cg, id, |i| ws.item(i).vis == Vis::Pub)
                .unwrap_or_else(|| vec![id]);
            let mut quals = ws.quals(&path);
            quals.push(ws.qual(callee).to_string());
            out.push(RawFinding {
                file_idx: node.file,
                line,
                rule: Rule::D5,
                msg: format!(
                    "`{}` is folded outside an ordered-merge path: caller `{}` is neither \
                     digest-scoped nor marked `// lint:ordered-merge` (path: {}) (D5)",
                    ws.qual(callee),
                    ws.qual(id),
                    quals.join(" -> ")
                ),
                path: quals,
            });
        }
    }
    out
}

/// If token `i` starts an iteration over a typed receiver, return the
/// receiver's root type name. Covers `x.iter()`-family method calls (on
/// locals, `self`, and `self.field`) and `for _ in x` loops.
fn iterated_type(
    ws: &Ws,
    file: &ParsedFile,
    f: &FnItem,
    toks: &[SpannedTok],
    locals: &std::collections::BTreeMap<String, String>,
    i: usize,
    bc: usize,
) -> Option<String> {
    let at = |k: usize| toks.get(k).map(|t| &t.tok);
    let own = &file.class.crate_name;
    let recv_type = |k: usize| -> Option<String> {
        // `k` = index of the receiver's last identifier.
        match at(k) {
            Some(Tok::Ident(v)) if v == "self" => f.impl_type.clone(),
            Some(Tok::Ident(v)) => {
                let via_self = matches!(at(k.wrapping_sub(1)), Some(Tok::Punct('.')))
                    && matches!(at(k.wrapping_sub(2)), Some(Tok::Ident(s)) if s == "self");
                if via_self {
                    f.impl_type.as_ref().and_then(|ty| {
                        ws.symbols
                            .field_type(ws.files, own, ty, v)
                            .and_then(|t| t.first().cloned())
                    })
                } else if matches!(at(k.wrapping_sub(1)), Some(Tok::Punct('.'))) {
                    None // deeper chains: unknown
                } else {
                    locals.get(v.as_str()).cloned()
                }
            }
            _ => None,
        }
    };
    match at(i) {
        Some(Tok::Ident(m))
            if matches!(
                m.as_str(),
                "iter" | "iter_mut" | "into_iter" | "values" | "keys" | "drain"
            ) && matches!(at(i.wrapping_sub(1)), Some(Tok::Punct('.')))
                && matches!(at(i + 1), Some(Tok::Punct('('))) =>
        {
            recv_type(i.wrapping_sub(2))
        }
        Some(Tok::Ident(kw)) if kw == "for" => {
            // `for <pat> in <expr>`: find `in`, then the first identifier
            // of the expression.
            let mut j = i + 1;
            while j <= bc && j < i + 12 {
                if matches!(at(j), Some(Tok::Ident(n)) if n == "in") {
                    let mut k = j + 1;
                    while k <= bc && k < j + 6 {
                        match at(k) {
                            Some(Tok::Ident(n)) if n == "mut" => k += 1,
                            Some(Tok::Punct('&'))
                            | Some(Tok::Punct('*'))
                            | Some(Tok::Punct('(')) => k += 1,
                            Some(Tok::Ident(_)) => {
                                // Receiver chains (`self.items`) resolve via
                                // the last ident before a `.`-free boundary;
                                // walk the dotted run.
                                let mut last = k;
                                while matches!(at(last + 1), Some(Tok::Punct('.')))
                                    && matches!(at(last + 2), Some(Tok::Ident(_)))
                                    && !matches!(at(last + 3), Some(Tok::Punct('(')))
                                {
                                    last += 2;
                                }
                                return recv_type(last);
                            }
                            _ => break,
                        }
                    }
                    break;
                }
                j += 1;
            }
            None
        }
        _ => None,
    }
}

/// D6 — ambient configuration taint. Every `std::env::var` read outside
/// the sanctioned config layer (`crates/util/src/env_cfg.rs`), the bench
/// crate, and test code is a finding, with the shortest public call path
/// that reaches it as evidence.
pub fn rule_d6(ws: &Ws) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for id in 0..ws.cg.facts.len() {
        let facts = &ws.cg.facts[id];
        if facts.env_lines.is_empty() || !ws.lib_fn(id) {
            continue;
        }
        let node = ws.symbols.node(id);
        if ws.files[node.file].class.is_env_cfg {
            continue;
        }
        let evidence =
            callgraph::ancestor_path(ws.cg, id, |i| ws.item(i).vis == Vis::Pub && ws.lib_fn(i));
        for &line in &facts.env_lines {
            let (how, path) = match &evidence {
                Some(p) if p.len() > 1 => {
                    let quals = ws.quals(p);
                    (
                        format!(" (reached from public `{}`)", quals.join(" -> ")),
                        quals,
                    )
                }
                _ => (String::new(), vec![ws.qual(id).to_string()]),
            };
            out.push(RawFinding {
                file_idx: node.file,
                line,
                rule: Rule::D6,
                msg: format!(
                    "`std::env::var` read in `{}` outside the config layer{how}; route ambient \
                     configuration through a named accessor in sage_util::env_cfg (D6)",
                    ws.qual(id)
                ),
                path,
            });
        }
    }
    out
}

/// U2 — unsafe reachability. Reverse-reach from every fn containing
/// `unsafe`; a `// SAFETY-BOUNDARY:` doc absorbs the taint (that fn owns
/// the invariant and is reported on only if the doc is missing). Every
/// public library fn still tainted is reported with its call path down
/// to the unsafe site.
pub fn rule_u2(ws: &Ws) -> Vec<RawFinding> {
    let sites: Vec<usize> = (0..ws.cg.facts.len())
        .filter(|&i| ws.cg.facts[i].has_unsafe && ws.lib_fn(i))
        .collect();
    let r = callgraph::reach(ws.cg, &sites, |i| ws.cg.facts[i].safety_boundary);
    let mut out = Vec::new();
    for id in 0..ws.cg.facts.len() {
        if !r.tainted[id] || ws.cg.facts[id].safety_boundary {
            continue;
        }
        let f = ws.item(id);
        if f.vis != Vis::Pub || !ws.lib_fn(id) {
            continue;
        }
        let path = r.path(id);
        let site = *path.last().unwrap_or(&id);
        let quals = ws.quals(&path);
        let hops = path.len() - 1;
        out.push(RawFinding {
            file_idx: ws.symbols.node(id).file,
            line: f.line,
            rule: Rule::U2,
            msg: format!(
                "public `{}` transitively reaches `unsafe` in `{}` ({hops} hop(s), path: {}); \
                 add a `// SAFETY-BOUNDARY:` doc to the fn that encapsulates the invariant (U2)",
                ws.qual(id),
                ws.qual(site),
                quals.join(" -> ")
            ),
            path: quals,
        });
    }
    out
}

/// P2 — interprocedural panic reachability, the transitive closure of
/// P1. Reverse-reach from every fn whose body contains
/// `unwrap`/`expect`/`panic!` (suppressed P1 sites still panic at
/// runtime); a `/// # Panics` doc section absorbs the taint. Every
/// public library fn still tainted is reported with the call path down
/// to the panic site.
pub fn rule_p2(ws: &Ws) -> Vec<RawFinding> {
    let sites: Vec<usize> = (0..ws.cg.facts.len())
        .filter(|&i| !ws.cg.facts[i].panic_lines.is_empty() && ws.lib_fn(i))
        .collect();
    let r = callgraph::reach(ws.cg, &sites, |i| ws.cg.facts[i].panics_doc);
    let mut out = Vec::new();
    for id in 0..ws.cg.facts.len() {
        if !r.tainted[id] || ws.cg.facts[id].panics_doc {
            continue;
        }
        let f = ws.item(id);
        if f.vis != Vis::Pub || !ws.lib_fn(id) {
            continue;
        }
        let path = r.path(id);
        let site = *path.last().unwrap_or(&id);
        let site_line = ws.cg.facts[site].panic_lines.first().copied().unwrap_or(0);
        let site_file = &ws.files[ws.symbols.node(site).file].rel;
        let quals = ws.quals(&path);
        out.push(RawFinding {
            file_idx: ws.symbols.node(id).file,
            line: f.line,
            rule: Rule::P2,
            msg: format!(
                "public `{}` can reach a panic site at {site_file}:{site_line} (path: {}); \
                 document the contract with a `/// # Panics` section at the boundary or return \
                 a Result (P2)",
                ws.qual(id),
                quals.join(" -> ")
            ),
            path: quals,
        });
    }
    out
}

// ---------------------------------------------------------------------
// Token helpers shared by the line rules
// ---------------------------------------------------------------------

/// `toks[i]` is an identifier; is the token right after it `want`?
fn next_is(toks: &[SpannedTok], i: usize, want: char) -> bool {
    matches!(toks.get(i + 1), Some(t) if t.tok == Tok::Punct(want))
}

/// Does `toks[i]` start the path `ident :: seg1 :: seg2 ...`?
fn path_seq(toks: &[SpannedTok], i: usize, segs: &[&str]) -> bool {
    let mut j = i + 1;
    for seg in segs {
        if !(matches!(toks.get(j), Some(t) if t.tok == Tok::Punct(':'))
            && matches!(toks.get(j + 1), Some(t) if t.tok == Tok::Punct(':')))
        {
            return false;
        }
        j += 2;
        match toks.get(j) {
            Some(t) if t.tok == Tok::Ident(seg.to_string()) => j += 1,
            _ => return false,
        }
    }
    true
}

/// If `toks[i]` is a macro name invoked as `name!("literal", ...)` (or
/// `name!["literal"]` / `name!{"literal"}`), return the literal. Names
/// passed as expressions are invisible to this — fine, because the obs
/// macros only accept literals.
fn macro_str_arg(toks: &[SpannedTok], i: usize) -> Option<String> {
    if !next_is(toks, i, '!') {
        return None;
    }
    let open = toks.get(i + 2)?;
    if !matches!(
        open.tok,
        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{')
    ) {
        return None;
    }
    match &toks.get(i + 3)?.tok {
        Tok::Str(s) => Some(s.clone()),
        _ => None,
    }
}

/// O1 shape: lowercase `[a-z0-9_]` segments, at least two, dot-separated,
/// with no empty segment (no leading/trailing/double dots).
fn is_metric_name(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Is `toks[i]` followed by `::` (i.e. used as a path root)?
fn followed_by_path_sep(toks: &[SpannedTok], i: usize) -> bool {
    matches!(toks.get(i + 1), Some(t) if t.tok == Tok::Punct(':'))
        && matches!(toks.get(i + 2), Some(t) if t.tok == Tok::Punct(':'))
}

/// U1 resolution: a `SAFETY:` comment on the same line, or on the run of
/// comment-only / attribute lines immediately above it.
fn safety_comment_covers(lexed: &Lexed, line: usize) -> bool {
    let has_safety = |l: usize| -> bool {
        lexed.lines[l]
            .comments
            .iter()
            .any(|c| c.contains("SAFETY:"))
    };
    if has_safety(line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let info = &lexed.lines[l];
        if info.has_code && !info.attr_start {
            return false;
        }
        if !info.has_code && info.comments.is_empty() {
            return false; // blank line breaks the comment run
        }
        if has_safety(l) {
            return true;
        }
    }
    false
}

/// Find `#[cfg(test)]`-gated items and return their inclusive line ranges.
fn test_regions(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.toks;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let Some(end_attr) = cfg_test_attr(toks, i) else {
            i += 1;
            continue;
        };
        let start_line = toks[i].line;
        // Skip any further attributes on the same item.
        let mut j = end_attr;
        while matches!(toks.get(j), Some(t) if t.tok == Tok::Punct('#'))
            && matches!(toks.get(j + 1), Some(t) if t.tok == Tok::Punct('['))
        {
            match matching(toks, j + 1, '[', ']') {
                Some(k) => j = k + 1,
                None => break,
            }
        }
        // The gated item ends at its matching `}` or at a `;` before any `{`.
        let mut k = j;
        let mut end_line = start_line;
        while let Some(t) = toks.get(k) {
            match t.tok {
                Tok::Punct('{') => {
                    if let Some(close) = matching(toks, k, '{', '}') {
                        end_line = toks[close].line;
                        i = close;
                    }
                    break;
                }
                Tok::Punct(';') => {
                    end_line = t.line;
                    i = k;
                    break;
                }
                _ => k += 1,
            }
        }
        regions.push((start_line, end_line));
        i += 1;
    }
    regions
}

/// If `toks[i]` opens an attribute whose path is `cfg` and whose argument
/// list mentions `test`, return the index just past the closing `]`.
fn cfg_test_attr(toks: &[SpannedTok], i: usize) -> Option<usize> {
    if toks.get(i)?.tok != Tok::Punct('#') || toks.get(i + 1)?.tok != Tok::Punct('[') {
        return None;
    }
    if toks.get(i + 2)?.tok != Tok::Ident("cfg".into()) {
        return None;
    }
    let close = matching(toks, i + 1, '[', ']')?;
    let has_test = toks[i + 2..close]
        .iter()
        .any(|t| t.tok == Tok::Ident("test".into()));
    has_test.then_some(close + 1)
}

/// Index of the punct matching the opener at `open_idx`, counting nesting.
fn matching(toks: &[SpannedTok], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.tok == Tok::Punct(open) {
            depth += 1;
        } else if t.tok == Tok::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Parse every `lint:allow` comment; malformed ones become A0 findings.
pub(crate) fn parse_allows(file: &str, lexed: &Lexed, out: &mut FileOutcome) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, info) in lexed.lines.iter().enumerate() {
        for c in &info.comments {
            // Anchored at the start of the comment so prose that merely
            // *mentions* `lint:allow(...)` (like this line) never parses
            // as a suppression.
            let body = c.trim_start_matches(['/', '!', '*', ' ', '\t']);
            let Some(rest) = body.strip_prefix("lint:allow") else {
                continue;
            };
            let parsed = parse_allow_body(rest);
            match parsed {
                Ok((rules, reason)) => {
                    let target = if info.has_code {
                        line
                    } else {
                        // Comment-only line: covers the next code line.
                        (line + 1..lexed.lines.len())
                            .find(|&l| lexed.lines[l].has_code)
                            .unwrap_or(line)
                    };
                    allows.push(Allow {
                        line,
                        target,
                        rules,
                        reason,
                        used: false,
                    });
                }
                Err(why) => out.findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: Rule::A0,
                    msg: format!("malformed suppression: {why} (A0)"),
                    path: Vec::new(),
                }),
            }
        }
    }
    allows
}

/// Parse `(RULE[,RULE...]): reason` after the `lint:allow` keyword.
fn parse_allow_body(rest: &str) -> Result<(Vec<Rule>, String), String> {
    let rest = rest.trim_start();
    let Some(inner_end) = rest.find(')') else {
        return Err("expected `(RULE): reason`".to_string());
    };
    let Some(stripped) = rest.strip_prefix('(') else {
        return Err("expected `(` after lint:allow".to_string());
    };
    let inner = &stripped[..inner_end - 1];
    let mut rules = Vec::new();
    for part in inner.split(',') {
        match Rule::parse(part) {
            Some(r) => rules.push(r),
            None => return Err(format!("unknown rule `{}`", part.trim())),
        }
    }
    let after = rest[inner_end + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err("missing `: reason` — every suppression must say why".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason — every suppression must say why".to_string());
    }
    Ok((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_class() -> FileClass {
        FileClass::from_rel_path("crates/core/src/lib.rs")
    }

    fn run(src: &str) -> FileOutcome {
        analyze("test.rs", &lib_class(), src)
    }

    #[test]
    fn d1_fires_on_hash_map() {
        let out = run("use std::collections::HashMap;\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::D1);
    }

    #[test]
    fn d1_exempts_bench() {
        let class = FileClass::from_rel_path("crates/bench/src/lib.rs");
        let out = analyze("b.rs", &class, "use std::collections::HashMap;\n");
        assert!(out.findings.is_empty());
    }

    #[test]
    fn d2_fires_on_instant_and_spawn() {
        let out = run("let t = Instant::now();\nstd::thread::spawn(|| {});\n");
        assert_eq!(out.findings.len(), 2);
        assert!(out.findings.iter().all(|f| f.rule == Rule::D2));
    }

    #[test]
    fn d2_ignores_thread_scope() {
        let out = run("std::thread::scope(|s| { s.spawn(|| {}); });\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn d3_fires_on_rand_path_but_not_rand_variable() {
        let out = run("let x = rand::random::<u64>();\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::D3);
        let out = run("let rand = 3; let y = rand + 1;\n");
        assert!(out.findings.is_empty());
    }

    #[test]
    fn u1_requires_safety_comment() {
        let out = run("unsafe { core::hint::unreachable_unchecked() }\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::U1);
        let ok = run("// SAFETY: provably unreachable by the match above\nunsafe { op() }\n");
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn u1_comment_run_skips_attributes() {
        let src = "// SAFETY: caller upholds alignment\n#[inline]\nunsafe fn f() {}\n";
        assert!(run(src).findings.is_empty());
    }

    #[test]
    fn p1_fires_and_suppression_works() {
        let out = run("let x = maybe().unwrap();\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::P1);
        let ok = run(
            "// lint:allow(P1): value proven Some by the guard above\nlet x = maybe().unwrap();\n",
        );
        assert!(ok.findings.is_empty());
        assert_eq!(ok.suppressed.len(), 1);
        assert_eq!(ok.suppressed[0].rule, Rule::P1);
    }

    #[test]
    fn p1_skips_cfg_test_modules_but_d_rules_do_not() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x().unwrap(); }\n}\n";
        assert!(run(src).findings.is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let out = run(src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::D1);
    }

    #[test]
    fn a0_fires_on_missing_reason_and_unused_allow() {
        let out = run("// lint:allow(P1)\nlet x = maybe().unwrap();\n");
        // Malformed allow does not suppress: one A0 plus the P1 itself.
        assert_eq!(out.findings.len(), 2);
        assert!(out.findings.iter().any(|f| f.rule == Rule::A0));
        assert!(out.findings.iter().any(|f| f.rule == Rule::P1));

        let out = run("// lint:allow(D1): nothing here actually uses a map\nlet x = 1;\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::A0);
    }

    #[test]
    fn allows_can_name_interprocedural_rules() {
        // Parse-level check: D4/P2 names round-trip through the allow
        // parser (the actual suppression routing is exercised in the
        // workspace-pass tests).
        for name in ["D4", "D5", "D6", "U2", "P2"] {
            assert!(Rule::parse(name).is_some(), "{name}");
        }
        let out = run("// lint:allow(D4): exercised by workspace pass only\nlet x = 1;\n");
        // Unused here (no workspace pass) → A0, but not malformed.
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::A0);
    }

    #[test]
    fn o1_enforces_snake_dot_case_metric_names() {
        for bad in [
            "obs_counter!(\"Serve.NnActions\").inc();\n",
            "obs_gauge!(\"serve\").set(1);\n",
            "obs_hist!(\"serve..latency\").observe(1);\n",
            "obs_counter!(\".leading.dot\").inc();\n",
            "obs_counter!(\"trailing.dot.\").inc();\n",
            "obs_counter!(\"lint.unsuppressed.D1\").inc();\n",
        ] {
            let out = run(bad);
            assert_eq!(out.findings.len(), 1, "{bad}");
            assert_eq!(out.findings[0].rule, Rule::O1, "{bad}");
        }
        for good in [
            "obs_counter!(\"serve.nn_actions\").inc();\n",
            "obs_gauge!(\"serve.tier_nn\").set(1);\n",
            "obs_hist!(\"netsim.queue_depth_pkts\").observe(1.0);\n",
            "obs_counter!(\"a.b2.c_d\").inc();\n",
        ] {
            assert!(run(good).findings.is_empty(), "{good}");
        }
        // Non-literal names and unrelated idents are invisible to O1.
        assert!(run("obs_counter!(name).inc();\n").findings.is_empty());
        assert!(run("let obs_counter = 3;\n").findings.is_empty());
        // O1 applies in bench and tests dirs too (shared namespace).
        let class = FileClass::from_rel_path("crates/bench/tests/t.rs");
        let out = analyze("b.rs", &class, "obs_counter!(\"Bad.Name\").inc();\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::O1);
    }

    #[test]
    fn same_line_suppression_targets_its_own_line() {
        let out = run("let x = maybe().unwrap(); // lint:allow(P1): guarded above\n");
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }

    #[test]
    fn chain_root_walks_method_chains_and_derefs() {
        let lexed = lex("buf.iter().map(f).sum::<f64>()");
        let toks = &lexed.toks;
        // Find the `.` before `sum`.
        let sum = toks
            .iter()
            .position(|t| t.tok == Tok::Ident("sum".into()))
            .unwrap();
        assert_eq!(chain_root(toks, sum - 1).as_deref(), Some("buf"));
        let lexed = lex("*slot += v;");
        let plus = lexed
            .toks
            .iter()
            .position(|t| t.tok == Tok::Punct('+'))
            .unwrap();
        assert_eq!(chain_root(&lexed.toks, plus).as_deref(), Some("slot"));
        let lexed = lex("acc[i] += v;");
        let plus = lexed
            .toks
            .iter()
            .position(|t| t.tok == Tok::Punct('+'))
            .unwrap();
        assert_eq!(chain_root(&lexed.toks, plus).as_deref(), Some("acc"));
    }

    #[test]
    fn closures_in_finds_params_and_bodies() {
        let lexed = lex("par_map(&pool, xs, |i, x| { i + x }, |y| y * 2)");
        let toks = &lexed.toks;
        let open = toks.iter().position(|t| t.tok == Tok::Punct('(')).unwrap();
        let close = crate::parse::matching(toks, open, '(', ')');
        let cs = closures_in(toks, open, close);
        assert_eq!(cs.len(), 2);
        let l0 = closure_locals(toks, &cs[0]);
        assert!(l0.contains(&"i".to_string()) && l0.contains(&"x".to_string()));
        let l1 = closure_locals(toks, &cs[1]);
        assert_eq!(l1, vec!["y".to_string()]);
    }
}
