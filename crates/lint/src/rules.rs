//! The rule engine: applies the determinism & safety rules to one lexed
//! file and resolves `// lint:allow(...)` suppressions.
//!
//! | Rule | What it rejects | Why |
//! |------|-----------------|-----|
//! | D1 | `HashMap`/`HashSet`/`RandomState` | hash iteration order is seeded per process — replay-breaking |
//! | D2 | `Instant`/`SystemTime`/`thread::spawn`/`mpsc` outside obs, `util::par`, bench | wall clocks and free-running threads leak scheduling into results |
//! | D3 | `rand::`, `thread_rng`, `OsRng`, `getrandom`, ... | ambient entropy bypasses the seeded `sage_util::Rng` |
//! | U1 | `unsafe` without a `// SAFETY:` comment | every unsafe site must state its proof obligations |
//! | P1 | `unwrap()`/`expect(`/`panic!` in library non-test code | library code propagates errors; panics are for provable invariants only |
//! | O1 | `obs_counter!`/`obs_gauge!`/`obs_hist!` names not in `snake.dot.case` | one metric namespace: lowercase dot-separated segments, grep-able and collision-free |
//! | A0 | malformed or unused `lint:allow` | suppressions must carry a reason and actually suppress something |
//!
//! Suppression syntax: `// lint:allow(RULE[,RULE...]): reason`. On a line
//! with code it covers that line; on a comment-only line it covers the
//! next line that has code. The reason is mandatory.

use crate::lexer::{lex, Lexed, Tok};
use std::fmt;

/// Rule identifiers. `A0` is the meta-rule about suppressions themselves
/// and can never be suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    D1,
    D2,
    D3,
    U1,
    P1,
    O1,
    A0,
}

impl Rule {
    pub const ALL: [Rule; 7] = [
        Rule::D1,
        Rule::D2,
        Rule::D3,
        Rule::U1,
        Rule::P1,
        Rule::O1,
        Rule::A0,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::U1 => "U1",
            Rule::P1 => "P1",
            Rule::O1 => "O1",
            Rule::A0 => "A0",
        }
    }

    fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "U1" => Some(Rule::U1),
            "P1" => Some(Rule::P1),
            "O1" => Some(Rule::O1),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An unsuppressed rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub msg: String,
}

/// A violation covered by a `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Suppressed {
    pub file: String,
    pub line: usize,
    pub rule: Rule,
    pub reason: String,
}

/// Result of analysing one file.
#[derive(Debug, Default)]
pub struct FileOutcome {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Suppressed>,
}

/// Where a file sits in the workspace — decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileClass {
    /// Short crate directory name (`util`, `serve`, `bench`, ... or
    /// `sage` for the root facade crate).
    pub crate_name: String,
    /// File lives under a `tests/` directory (integration tests).
    pub in_tests_dir: bool,
    /// The one file allowed to own threads: `crates/util/src/par.rs`.
    pub is_util_par: bool,
}

impl FileClass {
    /// Derive the class from a workspace-relative path such as
    /// `crates/serve/src/runtime.rs` or `src/lib.rs`.
    pub fn from_rel_path(rel: &str) -> FileClass {
        let parts: Vec<&str> = rel.split('/').collect();
        let crate_name = match parts.first() {
            Some(&"crates") if parts.len() > 1 => parts[1].to_string(),
            _ => "sage".to_string(),
        };
        FileClass {
            crate_name,
            in_tests_dir: parts.contains(&"tests"),
            is_util_par: rel.ends_with("crates/util/src/par.rs") || rel == "crates/util/src/par.rs",
        }
    }

    fn applies(&self, rule: Rule, in_test_region: bool) -> bool {
        match rule {
            // Benches are timing tools by nature: exempt from the hash-map
            // and wall-clock rules (their reports are not digest-covered).
            Rule::D1 => self.crate_name != "bench",
            Rule::D2 => self.crate_name != "bench" && self.crate_name != "obs" && !self.is_util_par,
            // Ambient entropy is never acceptable, benches included.
            Rule::D3 => true,
            Rule::U1 => true,
            // Library non-test code only.
            Rule::P1 => self.crate_name != "bench" && !self.in_tests_dir && !in_test_region,
            // Metric names share one namespace; the rule applies everywhere.
            Rule::O1 => true,
            Rule::A0 => true,
        }
    }
}

/// One parsed `lint:allow` annotation.
struct Allow {
    line: usize,
    target: usize,
    rules: Vec<Rule>,
    reason: String,
    used: bool,
}

/// Analyse one file's source under the given class.
pub fn analyze(file: &str, class: &FileClass, src: &str) -> FileOutcome {
    let lexed = lex(src);
    let test_regions = test_regions(&lexed);
    let in_test = |line: usize| test_regions.iter().any(|&(a, b)| line >= a && line <= b);

    let mut out = FileOutcome::default();
    let mut allows = parse_allows(file, &lexed, &mut out);

    let mut emit = |line: usize, rule: Rule, msg: String, out: &mut FileOutcome| {
        if !class.applies(rule, in_test(line)) {
            return;
        }
        for a in allows.iter_mut() {
            if a.target == line && a.rules.contains(&rule) {
                a.used = true;
                out.suppressed.push(Suppressed {
                    file: file.to_string(),
                    line,
                    rule,
                    reason: a.reason.clone(),
                });
                return;
            }
        }
        out.findings.push(Finding {
            file: file.to_string(),
            line,
            rule,
            msg,
        });
    };

    let toks = &lexed.toks;
    for (i, st) in toks.iter().enumerate() {
        let Tok::Ident(id) = &st.tok else { continue };
        let line = st.line;
        match id.as_str() {
            "HashMap" | "HashSet" | "RandomState" => emit(
                line,
                Rule::D1,
                format!("`{id}` iterates in per-process seeded order; use BTreeMap/BTreeSet or a slab (D1)"),
                &mut out,
            ),
            "Instant" | "SystemTime" => emit(
                line,
                Rule::D2,
                format!("wall clock `{id}` outside sage-obs/util::par/bench leaks real time into results (D2)"),
                &mut out,
            ),
            "mpsc" => emit(
                line,
                Rule::D2,
                "`mpsc` channels order messages by scheduling; use util::par's ordered reduction (D2)".into(),
                &mut out,
            ),
            "thread" if path_seq(toks, i, &["spawn"]) => emit(
                line,
                Rule::D2,
                "free-running `thread::spawn` escapes the deterministic worker pool (D2)".into(),
                &mut out,
            ),
            "rand" if followed_by_path_sep(toks, i) => emit(
                line,
                Rule::D3,
                "the `rand` crate draws ambient entropy; all RNG flows through sage_util::Rng (D3)".into(),
                &mut out,
            ),
            "thread_rng" | "from_entropy" | "getrandom" | "OsRng" | "StdRng" | "SmallRng" => {
                emit(
                    line,
                    Rule::D3,
                    format!("`{id}` is ambient entropy; seed a sage_util::Rng instead (D3)"),
                    &mut out,
                )
            }
            "unsafe" if !safety_comment_covers(&lexed, line) => emit(
                line,
                Rule::U1,
                "`unsafe` without a `// SAFETY:` comment on the preceding lines (U1)".into(),
                &mut out,
            ),
            "unwrap" if next_is(toks, i, '(') => emit(
                line,
                Rule::P1,
                "`unwrap()` in library code; propagate a Result or annotate the invariant (P1)".into(),
                &mut out,
            ),
            "expect" if next_is(toks, i, '(') => emit(
                line,
                Rule::P1,
                "`expect()` in library code; propagate a Result or annotate the invariant (P1)".into(),
                &mut out,
            ),
            "panic" if next_is(toks, i, '!') => emit(
                line,
                Rule::P1,
                "`panic!` in library code; return an error or annotate the invariant (P1)".into(),
                &mut out,
            ),
            "obs_counter" | "obs_gauge" | "obs_hist" => {
                if let Some(name) = macro_str_arg(toks, i) {
                    if !is_metric_name(&name) {
                        emit(
                            line,
                            Rule::O1,
                            format!(
                                "metric name `{name}` in `{id}!` is not snake.dot.case \
                                 (lowercase `[a-z0-9_]` segments, >= 2, dot-separated) (O1)"
                            ),
                            &mut out,
                        );
                    }
                }
            }
            _ => {}
        }
    }

    for a in allows.iter().filter(|a| !a.used) {
        out.findings.push(Finding {
            file: file.to_string(),
            line: a.line,
            rule: Rule::A0,
            msg: format!(
                "unused suppression `lint:allow({})` — nothing on line {} fires it (A0)",
                a.rules
                    .iter()
                    .map(|r| r.name())
                    .collect::<Vec<_>>()
                    .join(","),
                a.target
            ),
        });
    }
    out.findings.sort_by_key(|f| (f.line, f.rule));
    out
}

/// `toks[i]` is an identifier; is the token right after it `want`?
fn next_is(toks: &[crate::lexer::SpannedTok], i: usize, want: char) -> bool {
    matches!(toks.get(i + 1), Some(t) if t.tok == Tok::Punct(want))
}

/// Does `toks[i]` start the path `ident :: seg1 :: seg2 ...`?
fn path_seq(toks: &[crate::lexer::SpannedTok], i: usize, segs: &[&str]) -> bool {
    let mut j = i + 1;
    for seg in segs {
        if !(matches!(toks.get(j), Some(t) if t.tok == Tok::Punct(':'))
            && matches!(toks.get(j + 1), Some(t) if t.tok == Tok::Punct(':')))
        {
            return false;
        }
        j += 2;
        match toks.get(j) {
            Some(t) if t.tok == Tok::Ident(seg.to_string()) => j += 1,
            _ => return false,
        }
    }
    true
}

/// If `toks[i]` is a macro name invoked as `name!("literal", ...)` (or
/// `name!["literal"]` / `name!{"literal"}`), return the literal. Names
/// passed as expressions are invisible to this — fine, because the obs
/// macros only accept literals.
fn macro_str_arg(toks: &[crate::lexer::SpannedTok], i: usize) -> Option<String> {
    if !next_is(toks, i, '!') {
        return None;
    }
    let open = toks.get(i + 2)?;
    if !matches!(
        open.tok,
        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{')
    ) {
        return None;
    }
    match &toks.get(i + 3)?.tok {
        Tok::Str(s) => Some(s.clone()),
        _ => None,
    }
}

/// O1 shape: lowercase `[a-z0-9_]` segments, at least two, dot-separated,
/// with no empty segment (no leading/trailing/double dots).
fn is_metric_name(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() >= 2
        && segs.iter().all(|seg| {
            !seg.is_empty()
                && seg
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Is `toks[i]` followed by `::` (i.e. used as a path root)?
fn followed_by_path_sep(toks: &[crate::lexer::SpannedTok], i: usize) -> bool {
    matches!(toks.get(i + 1), Some(t) if t.tok == Tok::Punct(':'))
        && matches!(toks.get(i + 2), Some(t) if t.tok == Tok::Punct(':'))
}

/// U1 resolution: a `SAFETY:` comment on the same line, or on the run of
/// comment-only / attribute lines immediately above it.
fn safety_comment_covers(lexed: &Lexed, line: usize) -> bool {
    let has_safety = |l: usize| -> bool {
        lexed.lines[l]
            .comments
            .iter()
            .any(|c| c.contains("SAFETY:"))
    };
    if has_safety(line) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let info = &lexed.lines[l];
        if info.has_code && !info.attr_start {
            return false;
        }
        if !info.has_code && info.comments.is_empty() {
            return false; // blank line breaks the comment run
        }
        if has_safety(l) {
            return true;
        }
    }
    false
}

/// Find `#[cfg(test)]`-gated items and return their inclusive line ranges.
fn test_regions(lexed: &Lexed) -> Vec<(usize, usize)> {
    let toks = &lexed.toks;
    let mut regions = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let Some(end_attr) = cfg_test_attr(toks, i) else {
            i += 1;
            continue;
        };
        let start_line = toks[i].line;
        // Skip any further attributes on the same item.
        let mut j = end_attr;
        while matches!(toks.get(j), Some(t) if t.tok == Tok::Punct('#'))
            && matches!(toks.get(j + 1), Some(t) if t.tok == Tok::Punct('['))
        {
            match matching(toks, j + 1, '[', ']') {
                Some(k) => j = k + 1,
                None => break,
            }
        }
        // The gated item ends at its matching `}` or at a `;` before any `{`.
        let mut k = j;
        let mut end_line = start_line;
        while let Some(t) = toks.get(k) {
            match t.tok {
                Tok::Punct('{') => {
                    if let Some(close) = matching(toks, k, '{', '}') {
                        end_line = toks[close].line;
                        i = close;
                    }
                    break;
                }
                Tok::Punct(';') => {
                    end_line = t.line;
                    i = k;
                    break;
                }
                _ => k += 1,
            }
        }
        regions.push((start_line, end_line));
        i += 1;
    }
    regions
}

/// If `toks[i]` opens an attribute whose path is `cfg` and whose argument
/// list mentions `test`, return the index just past the closing `]`.
fn cfg_test_attr(toks: &[crate::lexer::SpannedTok], i: usize) -> Option<usize> {
    if toks.get(i)?.tok != Tok::Punct('#') || toks.get(i + 1)?.tok != Tok::Punct('[') {
        return None;
    }
    if toks.get(i + 2)?.tok != Tok::Ident("cfg".into()) {
        return None;
    }
    let close = matching(toks, i + 1, '[', ']')?;
    let has_test = toks[i + 2..close]
        .iter()
        .any(|t| t.tok == Tok::Ident("test".into()));
    has_test.then_some(close + 1)
}

/// Index of the punct matching the opener at `open_idx`, counting nesting.
fn matching(
    toks: &[crate::lexer::SpannedTok],
    open_idx: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.tok == Tok::Punct(open) {
            depth += 1;
        } else if t.tok == Tok::Punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Parse every `lint:allow` comment; malformed ones become A0 findings.
fn parse_allows(file: &str, lexed: &Lexed, out: &mut FileOutcome) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, info) in lexed.lines.iter().enumerate() {
        for c in &info.comments {
            // Anchored at the start of the comment so prose that merely
            // *mentions* `lint:allow(...)` (like this line) never parses
            // as a suppression.
            let body = c.trim_start_matches(['/', '!', '*', ' ', '\t']);
            let Some(rest) = body.strip_prefix("lint:allow") else {
                continue;
            };
            let parsed = parse_allow_body(rest);
            match parsed {
                Ok((rules, reason)) => {
                    let target = if info.has_code {
                        line
                    } else {
                        // Comment-only line: covers the next code line.
                        (line + 1..lexed.lines.len())
                            .find(|&l| lexed.lines[l].has_code)
                            .unwrap_or(line)
                    };
                    allows.push(Allow {
                        line,
                        target,
                        rules,
                        reason,
                        used: false,
                    });
                }
                Err(why) => out.findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: Rule::A0,
                    msg: format!("malformed suppression: {why} (A0)"),
                }),
            }
        }
    }
    allows
}

/// Parse `(RULE[,RULE...]): reason` after the `lint:allow` keyword.
fn parse_allow_body(rest: &str) -> Result<(Vec<Rule>, String), String> {
    let rest = rest.trim_start();
    let Some(inner_end) = rest.find(')') else {
        return Err("expected `(RULE): reason`".to_string());
    };
    let Some(stripped) = rest.strip_prefix('(') else {
        return Err("expected `(` after lint:allow".to_string());
    };
    let inner = &stripped[..inner_end - 1];
    let mut rules = Vec::new();
    for part in inner.split(',') {
        match Rule::parse(part) {
            Some(r) => rules.push(r),
            None => return Err(format!("unknown rule `{}`", part.trim())),
        }
    }
    let after = rest[inner_end + 1..].trim_start();
    let Some(reason) = after.strip_prefix(':') else {
        return Err("missing `: reason` — every suppression must say why".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason — every suppression must say why".to_string());
    }
    Ok((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_class() -> FileClass {
        FileClass {
            crate_name: "core".into(),
            in_tests_dir: false,
            is_util_par: false,
        }
    }

    fn run(src: &str) -> FileOutcome {
        analyze("test.rs", &lib_class(), src)
    }

    #[test]
    fn d1_fires_on_hash_map() {
        let out = run("use std::collections::HashMap;\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::D1);
    }

    #[test]
    fn d1_exempts_bench() {
        let class = FileClass {
            crate_name: "bench".into(),
            in_tests_dir: false,
            is_util_par: false,
        };
        let out = analyze("b.rs", &class, "use std::collections::HashMap;\n");
        assert!(out.findings.is_empty());
    }

    #[test]
    fn d2_fires_on_instant_and_spawn() {
        let out = run("let t = Instant::now();\nstd::thread::spawn(|| {});\n");
        assert_eq!(out.findings.len(), 2);
        assert!(out.findings.iter().all(|f| f.rule == Rule::D2));
    }

    #[test]
    fn d2_ignores_thread_scope() {
        let out = run("std::thread::scope(|s| { s.spawn(|| {}); });\n");
        assert!(out.findings.is_empty(), "{:?}", out.findings);
    }

    #[test]
    fn d3_fires_on_rand_path_but_not_rand_variable() {
        let out = run("let x = rand::random::<u64>();\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::D3);
        let out = run("let rand = 3; let y = rand + 1;\n");
        assert!(out.findings.is_empty());
    }

    #[test]
    fn u1_requires_safety_comment() {
        let out = run("unsafe { core::hint::unreachable_unchecked() }\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::U1);
        let ok = run("// SAFETY: provably unreachable by the match above\nunsafe { op() }\n");
        assert!(ok.findings.is_empty());
    }

    #[test]
    fn u1_comment_run_skips_attributes() {
        let src = "// SAFETY: caller upholds alignment\n#[inline]\nunsafe fn f() {}\n";
        assert!(run(src).findings.is_empty());
    }

    #[test]
    fn p1_fires_and_suppression_works() {
        let out = run("let x = maybe().unwrap();\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::P1);
        let ok = run(
            "// lint:allow(P1): value proven Some by the guard above\nlet x = maybe().unwrap();\n",
        );
        assert!(ok.findings.is_empty());
        assert_eq!(ok.suppressed.len(), 1);
        assert_eq!(ok.suppressed[0].rule, Rule::P1);
    }

    #[test]
    fn p1_skips_cfg_test_modules_but_d_rules_do_not() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x().unwrap(); }\n}\n";
        assert!(run(src).findings.is_empty());
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n}\n";
        let out = run(src);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::D1);
    }

    #[test]
    fn a0_fires_on_missing_reason_and_unused_allow() {
        let out = run("// lint:allow(P1)\nlet x = maybe().unwrap();\n");
        // Malformed allow does not suppress: one A0 plus the P1 itself.
        assert_eq!(out.findings.len(), 2);
        assert!(out.findings.iter().any(|f| f.rule == Rule::A0));
        assert!(out.findings.iter().any(|f| f.rule == Rule::P1));

        let out = run("// lint:allow(D1): nothing here actually uses a map\nlet x = 1;\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::A0);
    }

    #[test]
    fn o1_enforces_snake_dot_case_metric_names() {
        for bad in [
            "obs_counter!(\"Serve.NnActions\").inc();\n",
            "obs_gauge!(\"serve\").set(1);\n",
            "obs_hist!(\"serve..latency\").observe(1);\n",
            "obs_counter!(\".leading.dot\").inc();\n",
            "obs_counter!(\"trailing.dot.\").inc();\n",
            "obs_counter!(\"lint.unsuppressed.D1\").inc();\n",
        ] {
            let out = run(bad);
            assert_eq!(out.findings.len(), 1, "{bad}");
            assert_eq!(out.findings[0].rule, Rule::O1, "{bad}");
        }
        for good in [
            "obs_counter!(\"serve.nn_actions\").inc();\n",
            "obs_gauge!(\"serve.tier_nn\").set(1);\n",
            "obs_hist!(\"netsim.queue_depth_pkts\").observe(1.0);\n",
            "obs_counter!(\"a.b2.c_d\").inc();\n",
        ] {
            assert!(run(good).findings.is_empty(), "{good}");
        }
        // Non-literal names and unrelated idents are invisible to O1.
        assert!(run("obs_counter!(name).inc();\n").findings.is_empty());
        assert!(run("let obs_counter = 3;\n").findings.is_empty());
        // O1 applies in bench and tests dirs too (shared namespace).
        let class = FileClass {
            crate_name: "bench".into(),
            in_tests_dir: true,
            is_util_par: false,
        };
        let out = analyze("b.rs", &class, "obs_counter!(\"Bad.Name\").inc();\n");
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::O1);
    }

    #[test]
    fn same_line_suppression_targets_its_own_line() {
        let out = run("let x = maybe().unwrap(); // lint:allow(P1): guarded above\n");
        assert!(out.findings.is_empty());
        assert_eq!(out.suppressed.len(), 1);
    }
}
