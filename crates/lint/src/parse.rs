//! Tolerant recursive-descent parser: token stream → item-level AST.
//!
//! The grammar subset is exactly what the interprocedural rules need:
//! `fn` items (free, impl and trait methods) with their parameter and
//! body token ranges, `struct`/`enum` declarations with field types,
//! `impl` blocks (to attribute methods to a self type), inline `mod`
//! nesting, and flattened `use` trees. Everything else — consts, statics,
//! macros, trait bounds, where clauses — is skipped structurally
//! (matched delimiters, or to the next `;`), never an error: a file the
//! parser cannot fully shape still yields every item it *could* shape.
//!
//! Test-only code is tracked at parse time: an item annotated
//! `#[cfg(test)]` or `#[test]` (and everything nested inside it) is
//! marked `in_test`, which the rules use to scope P2/U2/D6 to shipping
//! code the way the line rules already scope P1.

use crate::ast::{Field, FileAst, FnItem, TypeItem, UseLeaf, Vis};
use crate::lexer::{Lexed, SpannedTok, Tok};

/// Parse one lexed file into its item-level AST.
pub fn parse(lexed: &Lexed) -> FileAst {
    let mut out = FileAst::default();
    let toks = &lexed.toks;
    parse_items(toks, 0, toks.len(), &mut out, &[], None, false);
    out
}

fn ident_at(toks: &[SpannedTok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[SpannedTok], i: usize, c: char) -> bool {
    matches!(toks.get(i), Some(t) if t.tok == Tok::Punct(c))
}

/// Index of the delimiter matching the opener at `open_idx` (which must
/// hold `open`), or the end of the stream if unterminated.
pub fn matching(toks: &[SpannedTok], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.tok == Tok::Punct(open) {
            depth += 1;
        } else if t.tok == Tok::Punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Skip a generic parameter/argument list starting at `<`; returns the
/// index just past the closing `>`. `->` arrows inside bounds (e.g.
/// `F: Fn(usize) -> R`) do not close the list, and `>>` closes two
/// levels because the lexer splits it into two `>` puncts.
fn skip_generics(toks: &[SpannedTok], i: usize) -> usize {
    debug_assert!(punct_at(toks, i, '<'));
    let mut depth = 0usize;
    let mut j = i;
    while j < toks.len() {
        if punct_at(toks, j, '<') {
            depth += 1;
        } else if punct_at(toks, j, '>') && !punct_at(toks, j.wrapping_sub(1), '-') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Skip to the `;` terminating a const/static/type item, honouring
/// nested delimiters; returns the index just past it.
fn skip_to_semi(toks: &[SpannedTok], i: usize) -> usize {
    let mut j = i;
    while j < toks.len() {
        match toks[j].tok {
            Tok::Punct(';') => return j + 1,
            Tok::Punct('{') => j = matching(toks, j, '{', '}') + 1,
            Tok::Punct('(') => j = matching(toks, j, '(', ')') + 1,
            Tok::Punct('[') => j = matching(toks, j, '[', ']') + 1,
            _ => j += 1,
        }
    }
    j
}

/// Does the attribute opening at `#`/`[` mark test-only code? True for
/// `#[test]` and any `#[cfg(...)]` whose arguments mention `test`.
fn attr_is_test(toks: &[SpannedTok], hash: usize, close: usize) -> bool {
    match ident_at(toks, hash + 2) {
        Some("test") => true,
        Some("cfg") => toks[hash + 2..close]
            .iter()
            .skip(1)
            .any(|t| t.tok == Tok::Ident("test".into())),
        _ => false,
    }
}

#[allow(clippy::too_many_arguments)]
fn parse_items(
    toks: &[SpannedTok],
    start: usize,
    end: usize,
    out: &mut FileAst,
    module: &[String],
    impl_type: Option<&str>,
    in_test: bool,
) {
    let mut i = start;
    let mut vis = Vis::Private;
    let mut item_test = in_test;
    let mut item_unsafe = false;
    // Reset per-item modifier state after an item (or junk) is consumed.
    macro_rules! reset {
        () => {{
            vis = Vis::Private;
            item_test = in_test;
            item_unsafe = false;
        }};
    }
    while i < end {
        let Some(st) = toks.get(i) else { break };
        match &st.tok {
            Tok::Punct('#') => {
                // Attribute (`#[...]` or inner `#![...]`): note test
                // markers, then skip the bracket group.
                let open = if punct_at(toks, i + 1, '[') {
                    i + 1
                } else if punct_at(toks, i + 1, '!') && punct_at(toks, i + 2, '[') {
                    i + 2
                } else {
                    i += 1;
                    continue;
                };
                let close = matching(toks, open, '[', ']');
                if open == i + 1 && attr_is_test(toks, i, close) {
                    item_test = true;
                }
                i = close + 1;
            }
            Tok::Ident(id) => match id.as_str() {
                "pub" => {
                    vis = if punct_at(toks, i + 1, '(') {
                        i = matching(toks, i + 1, '(', ')') + 1;
                        Vis::PubScoped
                    } else {
                        i += 1;
                        Vis::Pub
                    };
                }
                "unsafe" => {
                    item_unsafe = true;
                    i += 1;
                }
                "const" | "async" | "extern" if ahead_is_fn(toks, i + 1) => {
                    // Function qualifier, not a const/extern item.
                    i += 1;
                }
                "fn" => {
                    i = parse_fn(toks, i, out, module, impl_type, vis, item_test, item_unsafe);
                    reset!();
                }
                "struct" | "union" => {
                    i = parse_struct(toks, i, out, module, item_test);
                    reset!();
                }
                "enum" => {
                    i = parse_enum(toks, i, out, module, item_test);
                    reset!();
                }
                "mod" => {
                    if let Some(name) = ident_at(toks, i + 1) {
                        if punct_at(toks, i + 2, '{') {
                            let close = matching(toks, i + 2, '{', '}');
                            let mut sub = module.to_vec();
                            sub.push(name.to_string());
                            parse_items(toks, i + 3, close, out, &sub, None, item_test);
                            i = close + 1;
                        } else {
                            i = skip_to_semi(toks, i + 2);
                        }
                    } else {
                        i += 1;
                    }
                    reset!();
                }
                "impl" => {
                    i = parse_impl(toks, i, out, module, item_test);
                    reset!();
                }
                "trait" => {
                    // Default methods parse as methods of the trait name.
                    let name = ident_at(toks, i + 1).unwrap_or("").to_string();
                    let mut j = i + 2;
                    if punct_at(toks, j, '<') {
                        j = skip_generics(toks, j);
                    }
                    while j < end && !punct_at(toks, j, '{') && !punct_at(toks, j, ';') {
                        j += 1;
                    }
                    if punct_at(toks, j, '{') {
                        let close = matching(toks, j, '{', '}');
                        parse_items(toks, j + 1, close, out, module, Some(&name), item_test);
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                    reset!();
                }
                "use" => {
                    i = parse_use(toks, i + 1, out, item_test);
                    reset!();
                }
                "macro_rules" => {
                    let mut j = i + 1;
                    while j < end && !punct_at(toks, j, '{') {
                        j += 1;
                    }
                    i = matching(toks, j, '{', '}') + 1;
                    reset!();
                }
                "static" | "const" | "type" | "extern" => {
                    i = skip_to_semi(toks, i + 1);
                    reset!();
                }
                _ => {
                    i += 1;
                    reset!();
                }
            },
            // Stray delimiters at item level: skip structurally so a
            // mis-parse cannot swallow the rest of the file.
            Tok::Punct('{') => {
                i = matching(toks, i, '{', '}') + 1;
                reset!();
            }
            _ => {
                i += 1;
                reset!();
            }
        }
    }
}

/// Is the next item-level keyword (past qualifiers) `fn`?
fn ahead_is_fn(toks: &[SpannedTok], mut i: usize) -> bool {
    for _ in 0..4 {
        match ident_at(toks, i) {
            Some("fn") => return true,
            Some("unsafe" | "const" | "async") => i += 1,
            Some(_) | None => {
                // `extern "C" fn` carries a string literal qualifier.
                if matches!(toks.get(i).map(|t| &t.tok), Some(Tok::Str(_))) {
                    i += 1;
                } else {
                    return false;
                }
            }
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn parse_fn(
    toks: &[SpannedTok],
    fn_kw: usize,
    out: &mut FileAst,
    module: &[String],
    impl_type: Option<&str>,
    vis: Vis,
    in_test: bool,
    is_unsafe: bool,
) -> usize {
    let Some(name) = ident_at(toks, fn_kw + 1) else {
        return fn_kw + 1;
    };
    let name = name.to_string();
    let mut j = fn_kw + 2;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    if !punct_at(toks, j, '(') {
        return j; // tolerant: not a shape we understand
    }
    let params_close = matching(toks, j, '(', ')');
    let params = (j, params_close);
    // Return type and where clause: scan to the body `{` or a `;`.
    let mut k = params_close + 1;
    while k < toks.len() && !punct_at(toks, k, '{') && !punct_at(toks, k, ';') {
        if punct_at(toks, k, '<') {
            k = skip_generics(toks, k);
        } else if punct_at(toks, k, '(') {
            k = matching(toks, k, '(', ')') + 1;
        } else {
            k += 1;
        }
    }
    let (body, next) = if punct_at(toks, k, '{') {
        let close = matching(toks, k, '{', '}');
        (Some((k, close)), close + 1)
    } else {
        (None, k + 1)
    };
    out.fns.push(FnItem {
        name,
        vis,
        line: toks[fn_kw].line,
        module: module.to_vec(),
        impl_type: impl_type.map(str::to_string),
        params,
        body,
        in_test,
        is_unsafe,
    });
    next
}

fn parse_struct(
    toks: &[SpannedTok],
    kw: usize,
    out: &mut FileAst,
    module: &[String],
    in_test: bool,
) -> usize {
    let Some(name) = ident_at(toks, kw + 1) else {
        return kw + 1;
    };
    let name = name.to_string();
    let line = toks[kw].line;
    let mut j = kw + 2;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    // Where clause before the body, if any.
    while j < toks.len()
        && !punct_at(toks, j, '{')
        && !punct_at(toks, j, '(')
        && !punct_at(toks, j, ';')
    {
        if punct_at(toks, j, '<') {
            j = skip_generics(toks, j);
        } else {
            j += 1;
        }
    }
    let mut fields = Vec::new();
    let next = if punct_at(toks, j, '{') {
        let close = matching(toks, j, '{', '}');
        parse_named_fields(toks, j + 1, close, &mut fields);
        close + 1
    } else if punct_at(toks, j, '(') {
        // Tuple struct: fields named by position.
        let close = matching(toks, j, '(', ')');
        let mut k = j + 1;
        let mut idx = 0usize;
        let mut ty = Vec::new();
        while k < close {
            match &toks[k].tok {
                Tok::Punct(',') => {
                    fields.push(Field {
                        name: idx.to_string(),
                        ty: std::mem::take(&mut ty),
                    });
                    idx += 1;
                    k += 1;
                }
                Tok::Punct('(') => k = matching(toks, k, '(', ')') + 1,
                Tok::Ident(s) if s != "pub" => {
                    ty.push(s.clone());
                    k += 1;
                }
                _ => k += 1,
            }
        }
        if !ty.is_empty() {
            fields.push(Field {
                name: idx.to_string(),
                ty,
            });
        }
        skip_to_semi(toks, close + 1)
    } else {
        j + 1 // unit struct `;`
    };
    out.types.push(TypeItem {
        name,
        line,
        module: module.to_vec(),
        fields,
        in_test,
    });
    next
}

/// Parse `name: Type, ...` between `start` and `end` (exclusive).
fn parse_named_fields(toks: &[SpannedTok], start: usize, end: usize, out: &mut Vec<Field>) {
    let mut k = start;
    while k < end {
        // Skip attributes and visibility on the field.
        if punct_at(toks, k, '#') && punct_at(toks, k + 1, '[') {
            k = matching(toks, k + 1, '[', ']') + 1;
            continue;
        }
        if ident_at(toks, k) == Some("pub") {
            k += 1;
            if punct_at(toks, k, '(') {
                k = matching(toks, k, '(', ')') + 1;
            }
            continue;
        }
        let (Some(name), true) = (ident_at(toks, k), punct_at(toks, k + 1, ':')) else {
            k += 1;
            continue;
        };
        let name = name.to_string();
        // Collect type idents until a top-level `,` or the end.
        let mut ty = Vec::new();
        let mut j = k + 2;
        let mut depth = 0usize;
        while j < end {
            match &toks[j].tok {
                Tok::Punct('<') => depth += 1,
                Tok::Punct('>') => depth = depth.saturating_sub(1),
                Tok::Punct('(') => {
                    j = matching(toks, j, '(', ')');
                }
                Tok::Punct(',') if depth == 0 => break,
                Tok::Ident(s) if s != "dyn" && s != "mut" => ty.push(s.clone()),
                _ => {}
            }
            j += 1;
        }
        out.push(Field { name, ty });
        k = j + 1;
    }
}

fn parse_enum(
    toks: &[SpannedTok],
    kw: usize,
    out: &mut FileAst,
    module: &[String],
    in_test: bool,
) -> usize {
    let Some(name) = ident_at(toks, kw + 1) else {
        return kw + 1;
    };
    let name = name.to_string();
    let line = toks[kw].line;
    let mut j = kw + 2;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    while j < toks.len() && !punct_at(toks, j, '{') && !punct_at(toks, j, ';') {
        j += 1;
    }
    let next = if punct_at(toks, j, '{') {
        matching(toks, j, '{', '}') + 1
    } else {
        j + 1
    };
    out.types.push(TypeItem {
        name,
        line,
        module: module.to_vec(),
        fields: Vec::new(),
        in_test,
    });
    next
}

fn parse_impl(
    toks: &[SpannedTok],
    kw: usize,
    out: &mut FileAst,
    module: &[String],
    in_test: bool,
) -> usize {
    let mut j = kw + 1;
    if punct_at(toks, j, '<') {
        j = skip_generics(toks, j);
    }
    // Collect the head up to `{`; the self type is the path-root ident of
    // the segment after `for` (trait impls) or of the head itself.
    let mut head: Vec<&str> = Vec::new();
    let mut after_for: Vec<&str> = Vec::new();
    let mut seen_for = false;
    while j < toks.len() && !punct_at(toks, j, '{') {
        match &toks[j].tok {
            Tok::Punct('<') => {
                j = skip_generics(toks, j);
                continue;
            }
            Tok::Ident(s) if s == "for" => seen_for = true,
            Tok::Ident(s) if s == "where" => {
                // Bounds follow; the type head is complete.
                while j < toks.len() && !punct_at(toks, j, '{') {
                    if punct_at(toks, j, '<') {
                        j = skip_generics(toks, j);
                    } else {
                        j += 1;
                    }
                }
                break;
            }
            Tok::Ident(s) => {
                if seen_for {
                    after_for.push(s);
                } else {
                    head.push(s);
                }
            }
            _ => {}
        }
        j += 1;
    }
    let segs = if seen_for { &after_for } else { &head };
    let self_ty = segs.last().copied().unwrap_or("").to_string();
    if !punct_at(toks, j, '{') {
        return j + 1;
    }
    let close = matching(toks, j, '{', '}');
    let ty = (!self_ty.is_empty()).then_some(self_ty.as_str());
    parse_items(toks, j + 1, close, out, module, ty, in_test);
    close + 1
}

/// Parse (and flatten) a use tree starting after the `use` keyword;
/// returns the index just past the terminating `;`.
fn parse_use(toks: &[SpannedTok], start: usize, out: &mut FileAst, in_test: bool) -> usize {
    let end = skip_to_semi(toks, start);
    let mut leaves = Vec::new();
    use_tree(toks, start, end.saturating_sub(1), &[], &mut leaves);
    for (path, name) in leaves {
        out.uses.push(UseLeaf {
            path,
            name,
            in_test,
        });
    }
    end
}

/// Recursive use-tree flattener over `toks[start..end)` with `prefix`
/// already resolved.
fn use_tree(
    toks: &[SpannedTok],
    start: usize,
    end: usize,
    prefix: &[String],
    out: &mut Vec<(Vec<String>, String)>,
) {
    let mut path = prefix.to_vec();
    let mut i = start;
    while i < end {
        match &toks[i].tok {
            Tok::Ident(s) if s == "as" => {
                // `path as Alias`
                if let Some(alias) = ident_at(toks, i + 1) {
                    out.push((path.clone(), alias.to_string()));
                }
                return;
            }
            Tok::Ident(s) => {
                path.push(s.clone());
                i += 1;
            }
            Tok::Punct(':') => i += 1,
            Tok::Punct('*') => {
                out.push((path.clone(), "*".to_string()));
                return;
            }
            Tok::Punct('{') => {
                // Group: split members on top-level commas.
                let close = matching(toks, i, '{', '}');
                let mut seg = i + 1;
                let mut depth = 0usize;
                for k in i + 1..close {
                    match toks[k].tok {
                        Tok::Punct('{') => depth += 1,
                        Tok::Punct('}') => depth = depth.saturating_sub(1),
                        Tok::Punct(',') if depth == 0 => {
                            use_tree(toks, seg, k, &path, out);
                            seg = k + 1;
                        }
                        _ => {}
                    }
                }
                if seg < close {
                    use_tree(toks, seg, close, &path, out);
                }
                return;
            }
            _ => i += 1,
        }
    }
    if path.len() > prefix.len() {
        let name = path.last().cloned().unwrap_or_default();
        out.push((path, name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast(src: &str) -> FileAst {
        parse(&lex(src))
    }

    #[test]
    fn free_fns_and_visibility() {
        let a = ast("pub fn alpha() {}\nfn beta(x: u32) -> u32 { x }\npub(crate) fn gamma() {}\n");
        let names: Vec<_> = a.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "gamma"]);
        assert_eq!(a.fns[0].vis, Vis::Pub);
        assert_eq!(a.fns[1].vis, Vis::Private);
        assert_eq!(a.fns[2].vis, Vis::PubScoped);
        assert!(a.fns.iter().all(|f| f.body.is_some()));
    }

    #[test]
    fn impl_methods_carry_self_type() {
        let a = ast("struct Table;\nimpl Table {\n    pub fn digest(&self) -> u64 { 0 }\n}\nimpl std::fmt::Display for Table {\n    fn fmt(&self) -> u64 { 1 }\n}\n");
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].impl_type.as_deref(), Some("Table"));
        assert_eq!(a.fns[0].name, "digest");
        assert_eq!(a.fns[1].impl_type.as_deref(), Some("Table"));
        assert_eq!(a.fns[1].name, "fmt");
    }

    #[test]
    fn generics_with_fn_bounds_do_not_derail() {
        let a = ast(
            "pub fn par_map_range<R, F>(threads: usize, n: usize, f: F) -> Vec<R>\nwhere R: Send, F: Fn(usize) -> R + Sync,\n{ Vec::new() }\n",
        );
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].name, "par_map_range");
        assert!(a.fns[0].body.is_some());
    }

    #[test]
    fn nested_generics_close_with_split_gt() {
        let a = ast("fn f(v: Vec<Vec<u32>>) -> Option<Box<Vec<u8>>> { None }\nfn g() {}\n");
        let names: Vec<_> = a.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["f", "g"]);
    }

    #[test]
    fn struct_fields_capture_type_idents() {
        let a = ast("pub struct Entry {\n    pub key: u64,\n    hidden: Vec<f64>,\n    map: BTreeMap<String, Vec<u8>>,\n}\n");
        assert_eq!(a.types.len(), 1);
        let t = &a.types[0];
        assert_eq!(t.name, "Entry");
        assert_eq!(t.fields.len(), 3);
        assert_eq!(t.fields[1].name, "hidden");
        assert_eq!(t.fields[1].ty, ["Vec", "f64"]);
        assert_eq!(t.fields[2].ty[0], "BTreeMap");
    }

    #[test]
    fn mods_nest_and_cfg_test_marks_items() {
        let src = "mod inner {\n    pub fn deep() {}\n}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n    fn helper() {}\n}\nfn shipping() {}\n";
        let a = ast(src);
        let deep = a.fns.iter().find(|f| f.name == "deep").unwrap();
        assert_eq!(deep.module, ["inner"]);
        assert!(!deep.in_test);
        assert!(a.fns.iter().find(|f| f.name == "t").unwrap().in_test);
        assert!(a.fns.iter().find(|f| f.name == "helper").unwrap().in_test);
        assert!(!a.fns.iter().find(|f| f.name == "shipping").unwrap().in_test);
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_globs() {
        let a = ast("use sage_util::{par_map, Json as J, rng::Rng};\nuse std::collections::BTreeMap;\nuse sage_obs::*;\n");
        let find = |n: &str| a.uses.iter().find(|u| u.name == n).map(|u| u.path.clone());
        assert_eq!(
            find("par_map"),
            Some(vec!["sage_util".into(), "par_map".into()])
        );
        assert_eq!(find("J"), Some(vec!["sage_util".into(), "Json".into()]));
        assert_eq!(
            find("Rng"),
            Some(vec!["sage_util".into(), "rng".into(), "Rng".into()])
        );
        assert_eq!(
            find("BTreeMap"),
            Some(vec!["std".into(), "collections".into(), "BTreeMap".into()])
        );
        assert_eq!(find("*"), Some(vec!["sage_obs".into()]));
    }

    #[test]
    fn unsafe_and_qualified_fns_parse() {
        let a = ast("pub unsafe fn raw() {}\nconst fn cf() -> u32 { 1 }\npub async fn af() {}\nextern \"C\" fn ef() {}\n");
        let names: Vec<_> = a.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["raw", "cf", "af", "ef"]);
        assert!(a.fns[0].is_unsafe);
        assert!(!a.fns[1].is_unsafe);
    }

    #[test]
    fn tolerant_on_consts_statics_macros() {
        let src = "const TABLE: [u8; 4] = [0; 4];\nstatic NAME: &str = \"x\";\nmacro_rules! m { () => {}; }\ntype Alias = Vec<u8>;\nfn after() {}\n";
        let a = ast(src);
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].name, "after");
    }

    #[test]
    fn trait_default_methods_attach_to_trait_name() {
        let a = ast("pub trait Scheme {\n    fn act(&self) -> u64;\n    fn name(&self) -> &str { \"x\" }\n}\n");
        assert_eq!(a.fns.len(), 2);
        assert_eq!(a.fns[0].impl_type.as_deref(), Some("Scheme"));
        assert!(a.fns[0].body.is_none());
        assert!(a.fns[1].body.is_some());
    }

    #[test]
    fn fn_at_finds_enclosing_body() {
        let src = "fn outer() { inner_call(); }\nfn second() {}\n";
        let a = ast(src);
        let (open, close) = a.fns[0].body.unwrap();
        assert_eq!(a.fn_at(open + 1).map(|f| f.name.as_str()), Some("outer"));
        assert_eq!(a.fn_at(close).map(|f| f.name.as_str()), Some("outer"));
        assert!(
            a.fn_at(close + 1).is_none()
                || a.fn_at(close + 1).map(|f| f.name.as_str()) != Some("outer")
        );
    }

    #[test]
    fn raw_idents_and_shebang_parse_cleanly() {
        let a = ast("#!/usr/bin/env x\nfn r#match() {}\n");
        assert_eq!(a.fns.len(), 1);
        assert_eq!(a.fns[0].name, "match");
    }
}
