//! A minimal Rust lexer: just enough token structure for line-oriented
//! rules.
//!
//! The rules in [`crate::rules`] only need to know, per line, which
//! *identifiers* and *punctuation* appear as real code and what comment
//! text accompanies them. Everything that could make a naive substring
//! grep lie — string literals, char literals vs. lifetimes, raw strings,
//! nested block comments — is consumed here so `"HashMap"` inside a
//! string or `// uses Instant` inside a comment never reaches a rule.
//!
//! This is deliberately not a full Rust lexer: numeric literal suffixes,
//! float exponents and similar are split into harmless fragments, which
//! is fine because no rule matches on them.

/// One code token. Comments are not tokens; they land in [`LineInfo`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `unwrap`, `HashMap`, ...).
    Ident(String),
    /// A single punctuation character (`::` arrives as two `Punct(':')`).
    Punct(char),
    /// Any string literal (normal, raw, byte) with its contents (escape
    /// sequences left raw) — the O1 metric-name rule inspects them.
    Str(String),
    /// A char or byte-char literal; contents are discarded.
    Char,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A numeric literal fragment, carrying its raw lexeme so rules can
    /// tell float literals (`0.0`, `1f64`) from integers.
    Num(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedTok {
    pub line: usize,
    pub tok: Tok,
}

/// Per-line facts the rules consume directly.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// The line carries at least one code token.
    pub has_code: bool,
    /// The first code token on the line is `#` (an attribute line).
    pub attr_start: bool,
    /// Comment text present on the line (line comments and every line a
    /// block comment spans).
    pub comments: Vec<String>,
}

/// Lexer output: the token stream plus per-line info (index 0 unused so
/// that `lines[n]` is source line `n`).
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<SpannedTok>,
    pub lines: Vec<LineInfo>,
}

impl Lexed {
    fn line_mut(&mut self, line: usize) -> &mut LineInfo {
        if self.lines.len() <= line {
            self.lines.resize_with(line + 1, LineInfo::default);
        }
        &mut self.lines[line]
    }

    fn push(&mut self, line: usize, tok: Tok) {
        let info = self.line_mut(line);
        if !info.has_code {
            info.has_code = true;
            info.attr_start = tok == Tok::Punct('#');
        }
        self.toks.push(SpannedTok { line, tok });
    }

    fn push_comment(&mut self, line: usize, text: &str) {
        self.line_mut(line).comments.push(text.to_string());
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenise `src`. Never fails: unterminated constructs consume to EOF.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    out.line_mut(1);

    // A shebang (`#!/usr/bin/env ...`) is legal only on the very first
    // line and is not Rust syntax; consume it as a comment. `#![...]`
    // inner attributes are NOT shebangs.
    if b.first() == Some(&'#') && b.get(1) == Some(&'!') && b.get(2) != Some(&'[') {
        while i < b.len() && b[i] != '\n' {
            i += 1;
        }
        let text: String = b[..i].iter().collect();
        out.push_comment(1, &text);
    }

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                out.line_mut(line);
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                out.push_comment(line, &text);
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                // Nested block comment; record its text on every line it
                // spans so comment-only lines stay visible to the rules.
                let mut depth = 1usize;
                let mut seg_start = i;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        let text: String = b[seg_start..i].iter().collect();
                        out.push_comment(line, &text);
                        line += 1;
                        out.line_mut(line);
                        seg_start = i + 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 1;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 1;
                    }
                    i += 1;
                }
                let text: String = b[seg_start..i.min(b.len())].iter().collect();
                out.push_comment(line, &text);
            }
            '"' => {
                i = consume_string(&b, i, &mut line, &mut out);
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                if b.get(i + 1).copied().is_some_and(is_ident_start) {
                    let mut j = i + 2;
                    while j < b.len() && is_ident_continue(b[j]) {
                        j += 1;
                    }
                    if b.get(j) == Some(&'\'') {
                        out.push(line, Tok::Char);
                        i = j + 1;
                    } else {
                        out.push(line, Tok::Lifetime);
                        i = j;
                    }
                } else {
                    // Escaped or punctuation char literal: scan to the
                    // closing quote, honouring backslash escapes.
                    let mut j = i + 1;
                    while j < b.len() && b[j] != '\'' {
                        if b[j] == '\\' {
                            j += 1;
                        }
                        j += 1;
                    }
                    out.push(line, Tok::Char);
                    i = j + 1;
                }
            }
            c if is_ident_start(c) => {
                // Raw/byte string prefixes lex as one literal token.
                if let Some((content, next)) = raw_string_start(&b, i) {
                    out.push(line, Tok::Str(content));
                    i = next;
                    continue;
                }
                if (c == 'b') && b.get(i + 1) == Some(&'"') {
                    i = consume_string(&b, i + 1, &mut line, &mut out);
                    continue;
                }
                // Raw identifier `r#ident`: one Ident token holding the
                // name, so `r#type` never splits into `r`, `#`, `type`.
                // (`r#"..."#` was already consumed by raw_string_start.)
                if c == 'r'
                    && b.get(i + 1) == Some(&'#')
                    && b.get(i + 2).copied().is_some_and(is_ident_start)
                {
                    let start = i + 2;
                    i = start;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    let ident: String = b[start..i].iter().collect();
                    out.push(line, Tok::Ident(ident));
                    continue;
                }
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                out.push(line, Tok::Ident(ident));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (is_ident_continue(b[i]) || b[i] == '.') {
                    // Stop a float's trailing `.` from eating `..` ranges.
                    if b[i] == '.' && b.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                out.push(line, Tok::Num(text));
            }
            c => {
                out.push(line, Tok::Punct(c));
                i += 1;
            }
        }
    }
    out
}

/// If `b[i..]` starts a raw (byte) string (`r"`, `r#"`, `br##"`, ...),
/// consume it and return its contents plus the index just past the
/// closing delimiter.
fn raw_string_start(b: &[char], i: usize) -> Option<(String, usize)> {
    let mut j = i;
    if b.get(j) == Some(&'b') {
        j += 1;
    }
    if b.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    let content_start = j;
    // Scan for `"` followed by `hashes` hash marks.
    while j < b.len() {
        if b[j] == '"' {
            let mut k = 0usize;
            while k < hashes && b.get(j + 1 + k) == Some(&'#') {
                k += 1;
            }
            if k == hashes {
                let content: String = b[content_start..j].iter().collect();
                return Some((content, j + 1 + hashes));
            }
        }
        j += 1;
    }
    Some((b[content_start..].iter().collect(), b.len()))
}

/// Consume a normal string literal starting at the opening quote `b[i]`,
/// tracking embedded newlines. Returns the index just past the close.
fn consume_string(b: &[char], i: usize, line: &mut usize, out: &mut Lexed) -> usize {
    let start_line = *line;
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                out.line_mut(*line);
                j += 1;
            }
            '"' => {
                j += 1;
                break;
            }
            _ => j += 1,
        }
    }
    let close = j.saturating_sub(1).max(i + 1);
    let content: String = b[i + 1..close.min(b.len())].iter().collect();
    out.push(start_line, Tok::Str(content));
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
let a = "HashMap inside a string";
// HashMap inside a line comment
/* HashMap inside a /* nested */ block */
let b = r#"HashMap inside a raw string"#;
let c = b"HashMap bytes";
"##;
        let ids = idents(src);
        assert!(!ids.iter().any(|s| s == "HashMap"), "{ids:?}");
        assert!(ids.iter().any(|s| s == "let"));
    }

    #[test]
    fn string_contents_are_captured() {
        let strs = |src: &str| -> Vec<String> {
            lex(src)
                .toks
                .into_iter()
                .filter_map(|t| match t.tok {
                    Tok::Str(s) => Some(s),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(strs("let a = \"serve.nn_actions\";"), ["serve.nn_actions"]);
        assert_eq!(strs("let b = r#\"raw.name\"#;"), ["raw.name"]);
        assert_eq!(strs("let c = b\"bytes.too\";"), ["bytes.too"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed.toks.iter().filter(|t| t.tok == Tok::Lifetime).count();
        let chars = lexed.toks.iter().filter(|t| t.tok == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn line_numbers_and_comment_capture() {
        let src = "let a = 1;\n// SAFETY: fine\nunsafe {}\n";
        let lexed = lex(src);
        assert!(lexed.lines[2].comments[0].contains("SAFETY:"));
        assert!(!lexed.lines[2].has_code);
        let unsafe_tok = lexed
            .toks
            .iter()
            .find(|t| t.tok == Tok::Ident("unsafe".into()));
        assert_eq!(unsafe_tok.map(|t| t.line), Some(3));
    }

    #[test]
    fn attr_lines_are_flagged() {
        let src = "#[inline]\nfn f() {}\n";
        let lexed = lex(src);
        assert!(lexed.lines[1].attr_start);
        assert!(!lexed.lines[2].attr_start);
    }

    #[test]
    fn escaped_char_literals_do_not_derail() {
        let src = "let q = '\\''; let n = '\\n'; let x = 1;";
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "let").count(), 3);
    }

    #[test]
    fn raw_identifiers_lex_as_one_ident() {
        let src = "fn r#match(r#type: u32) -> u32 { r#type }";
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "match").count(), 1, "{ids:?}");
        assert_eq!(ids.iter().filter(|s| *s == "type").count(), 2, "{ids:?}");
        // No stray `r` fragments and no `#` punct in the middle of a name.
        assert!(!ids.iter().any(|s| s == "r"), "{ids:?}");
        // Raw strings still win over raw identifiers.
        let lexed = lex("let a = r#\"not an ident\"#;");
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.tok == Tok::Str("not an ident".into())));
    }

    #[test]
    fn shebang_line_is_a_comment_not_tokens() {
        let src = "#!/usr/bin/env run-cargo-script\nlet a = 1;\n";
        let lexed = lex(src);
        assert!(!lexed.lines[1].has_code, "{:?}", lexed.lines[1]);
        assert!(lexed.lines[1].comments[0].contains("usr/bin/env"));
        assert!(lexed.lines[2].has_code);
        // Inner attributes at file start are NOT shebangs.
        let lexed = lex("#![allow(dead_code)]\n");
        assert!(lexed.lines[1].has_code);
        assert!(lexed.lines[1].attr_start);
    }

    #[test]
    fn nested_generics_close_as_split_gt_tokens() {
        // `>>` in generic position must arrive as two `>` puncts so the
        // parser can close two levels (same for `<<` opening none).
        let lexed = lex("let v: Vec<Vec<u32>> = Vec::new();");
        let gts = lexed
            .toks
            .iter()
            .filter(|t| t.tok == Tok::Punct('>'))
            .count();
        assert_eq!(gts, 2);
    }

    #[test]
    fn numeric_lexemes_distinguish_floats() {
        let nums = |src: &str| -> Vec<String> {
            lex(src)
                .toks
                .into_iter()
                .filter_map(|t| match t.tok {
                    Tok::Num(s) => Some(s),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(
            nums("let a = 0.0; let b = 17; let c = 1f64;"),
            ["0.0", "17", "1f64"]
        );
        // `..` ranges do not glue onto the number.
        assert_eq!(nums("for i in 0..10 {}"), ["0", "10"]);
    }

    #[test]
    fn multiline_block_comment_marks_every_line() {
        let src = "/* one\nSAFETY: two\nthree */\nunsafe {}\n";
        let lexed = lex(src);
        assert!(lexed.lines[2].comments[0].contains("SAFETY:"));
        assert!(lexed.lines[3].comments[0].contains("three"));
    }
}
