//! The workspace self-lint golden: the repo's own sources must carry
//! zero unsuppressed findings, and every suppression must state a
//! reason. This is the test-suite twin of the `sage_lint` binary stage
//! in `scripts/check.sh`.

use sage_util::Json;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/lint → workspace root is two up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = sage_lint::lint_workspace(&workspace_root()).expect("workspace walks");
    let lines: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: {}: {}", f.file, f.line, f.rule, f.msg))
        .collect();
    assert!(
        report.findings.is_empty(),
        "unsuppressed lint findings:\n{}",
        lines.join("\n")
    );
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files",
        report.files_scanned
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let report = sage_lint::lint_workspace(&workspace_root()).expect("workspace walks");
    assert!(
        !report.suppressed.is_empty(),
        "the workspace is known to carry justified suppressions"
    );
    for s in &report.suppressed {
        assert!(
            s.reason.trim().len() >= 10,
            "{}:{}: suppression reason too thin: {:?}",
            s.file,
            s.line,
            s.reason
        );
    }
}

#[test]
fn report_round_trips_through_util_json() {
    let report = sage_lint::lint_workspace(&workspace_root()).expect("workspace walks");
    let text = report.to_json().to_string();
    let parsed = Json::parse(&text).expect("LINT report must parse via util::json");
    assert_eq!(
        parsed.get("files_scanned").and_then(|v| v.as_usize()),
        Some(report.files_scanned)
    );
    let rules = parsed.get("rules").expect("rules section");
    for r in [
        "D1", "D2", "D3", "D4", "D5", "D6", "U1", "U2", "P1", "P2", "O1", "A0",
    ] {
        let entry = rules.get(r).unwrap_or_else(|| panic!("rule {r} missing"));
        assert_eq!(
            entry.get("unsuppressed").and_then(|v| v.as_usize()),
            Some(0),
            "rule {r} must be clean in the self-lint"
        );
    }
}

#[test]
fn report_carries_phase_timings_and_per_crate_breakdown() {
    let report = sage_lint::lint_workspace(&workspace_root()).expect("workspace walks");
    let names: Vec<&str> = report.timings_us.iter().map(|t| t.0.as_str()).collect();
    assert_eq!(
        names,
        [
            "lex_parse",
            "line_rules",
            "symbols_callgraph",
            "rule_d4",
            "rule_d5",
            "rule_d6",
            "rule_u2",
            "rule_p2"
        ],
        "phase timing names are part of the report contract"
    );
    for krate in ["core", "netsim", "serve", "util", "lint"] {
        let stats = report
            .per_crate
            .get(krate)
            .unwrap_or_else(|| panic!("crate {krate} missing from breakdown"));
        assert!(stats.files > 0, "crate {krate} reports zero files");
    }
}

/// Seeded negative control: inject an unordered float reduction into the
/// real workspace source set and require the analyzer to catch it. If this
/// fails, the D4 detector has silently rotted and the clean self-lint above
/// proves nothing.
#[test]
fn injected_unordered_float_reduce_is_caught() {
    let root = workspace_root();
    let mut sources = sage_lint::collect_sources(&root).expect("workspace walks");
    let deps = sage_lint::resolve::scan_deps(&root).unwrap_or_default();
    sources.push((
        "crates/netsim/src/injected_negctrl.rs".to_string(),
        concat!(
            "pub fn bad_total(threads: usize, xs: &[f64]) -> f64 {\n",
            "    let mut total: f64 = 0.0;\n",
            "    sage_util::par_map_range(threads, xs.len(), |i| {\n",
            "        total += xs[i];\n",
            "    });\n",
            "    total\n",
            "}\n"
        )
        .to_string(),
    ));
    let report = sage_lint::analyze_sources(&sources, &deps);
    let caught = report
        .findings
        .iter()
        .filter(|f| f.rule == sage_lint::Rule::D4 && f.file.contains("injected_negctrl"))
        .count();
    assert!(
        caught > 0,
        "the injected unordered float reduce went undetected; findings: {:?}",
        report.findings
    );
    // The injection must be the *only* source of findings — the real tree
    // stays clean around it.
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.file.contains("injected_negctrl")),
        "{:?}",
        report.findings
    );
}
