//! The workspace self-lint golden: the repo's own sources must carry
//! zero unsuppressed findings, and every suppression must state a
//! reason. This is the test-suite twin of the `sage_lint` binary stage
//! in `scripts/check.sh`.

use sage_util::Json;
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/lint → workspace root is two up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = sage_lint::lint_workspace(&workspace_root()).expect("workspace walks");
    let lines: Vec<String> = report
        .findings
        .iter()
        .map(|f| format!("{}:{}: {}: {}", f.file, f.line, f.rule, f.msg))
        .collect();
    assert!(
        report.findings.is_empty(),
        "unsuppressed lint findings:\n{}",
        lines.join("\n")
    );
    // Sanity: the walk actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files",
        report.files_scanned
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    let report = sage_lint::lint_workspace(&workspace_root()).expect("workspace walks");
    assert!(
        !report.suppressed.is_empty(),
        "the workspace is known to carry justified suppressions"
    );
    for s in &report.suppressed {
        assert!(
            s.reason.trim().len() >= 10,
            "{}:{}: suppression reason too thin: {:?}",
            s.file,
            s.line,
            s.reason
        );
    }
}

#[test]
fn report_round_trips_through_util_json() {
    let report = sage_lint::lint_workspace(&workspace_root()).expect("workspace walks");
    let text = report.to_json().to_string();
    let parsed = Json::parse(&text).expect("LINT report must parse via util::json");
    assert_eq!(
        parsed.get("files_scanned").and_then(|v| v.as_usize()),
        Some(report.files_scanned)
    );
    let rules = parsed.get("rules").expect("rules section");
    for r in ["D1", "D2", "D3", "U1", "P1", "A0"] {
        let entry = rules.get(r).unwrap_or_else(|| panic!("rule {r} missing"));
        assert_eq!(
            entry.get("unsuppressed").and_then(|v| v.as_usize()),
            Some(0),
            "rule {r} must be clean in the self-lint"
        );
    }
}
