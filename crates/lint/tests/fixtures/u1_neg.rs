// Fixture: U1 negative — both accepted SAFETY placements: a comment on
// the preceding line (walking over attributes) and one on the same line.
pub fn first(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    #[allow(clippy::missing_docs_in_private_items)]
    unsafe {
        *xs.get_unchecked(0)
    }
}

pub fn second(xs: &[f64]) -> f64 {
    assert!(xs.len() > 1);
    unsafe { *xs.get_unchecked(1) } // SAFETY: len > 1 checked above.
}
