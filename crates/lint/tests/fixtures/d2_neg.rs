// Fixture: D2 negative — simulated time and the deterministic pool.
pub fn elapsed(now_ns: u64, start_ns: u64) -> u64 {
    now_ns.saturating_sub(start_ns)
}

pub fn fan_out(n: usize) -> Vec<usize> {
    sage_util::par_map_range(0, n, |i| i * 2)
}
