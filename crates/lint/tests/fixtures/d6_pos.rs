//! D6 positive: an ambient `std::env::var` read in library code, outside
//! the sanctioned `env_cfg` layer, reachable from a public API.

fn knob() -> usize {
    std::env::var("SAGE_FIXTURE_KNOB")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

fn mid() -> usize {
    knob() * 2
}

pub fn api() -> usize {
    mid() + 1
}
