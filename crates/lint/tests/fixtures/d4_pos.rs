//! D4 positive: float accumulation into captured state inside a closure
//! handed to a `par_map*` helper — the classic unordered reduction.

pub fn unordered_sum(threads: usize, xs: &[f64]) -> f64 {
    let mut total: f64 = 0.0;
    sage_util::par_map_range(threads, xs.len(), |i| {
        total += xs[i];
    });
    total
}

pub fn unordered_scale(threads: usize, rows: &[Vec<f32>]) -> f32 {
    let mut norm = 1.0f32;
    sage_util::par_map(threads, rows, |_, row| {
        norm *= row.len() as f32;
    });
    norm
}
