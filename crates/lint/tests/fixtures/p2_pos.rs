//! P2 positive: a public API transitively reaching a (P1-justified) unwrap
//! with no `# Panics` doc anywhere on the path — the panic contract is
//! invisible to callers.

static TABLE: [(&str, u32); 2] = [("cubic", 1), ("bbr", 2)];

pub fn parse_scheme(name: &str) -> u32 {
    lookup(name)
}

fn lookup(name: &str) -> u32 {
    TABLE
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        // lint:allow(P1): the caller contract requires a known scheme name; an unknown name is a programming error
        .unwrap()
}
