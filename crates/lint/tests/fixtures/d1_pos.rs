// Fixture: D1 positive — HashMap/HashSet in a non-bench crate.
// Not compiled; consumed as text by rules_fixtures.rs.
use std::collections::HashMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
