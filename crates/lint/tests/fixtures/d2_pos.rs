// Fixture: D2 positive — ambient wall clock and ad-hoc threading in a
// non-exempt crate (three findings: Instant, thread::spawn, mpsc).
use std::sync::mpsc;
use std::time::Instant;

pub fn race() -> u128 {
    let t0 = Instant::now();
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || tx.send(1u32));
    let _ = rx.recv();
    t0.elapsed().as_nanos()
}
