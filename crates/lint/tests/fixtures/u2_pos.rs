//! U2 positive: a public API transitively reaching an `unsafe` block whose
//! enclosing fn carries no `SAFETY-BOUNDARY` doc — the obligation leaks to
//! callers undocumented.

pub fn fast_copy(dst: &mut [u8], src: &[u8]) {
    inner(dst, src);
}

fn inner(dst: &mut [u8], src: &[u8]) {
    assert!(dst.len() >= src.len());
    // SAFETY: the length check above guarantees the destination holds
    // src.len() bytes, and distinct &mut/& borrows cannot overlap.
    unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr(), src.len()) }
}
