// Fixture: A0 positive — three broken suppressions: a missing reason,
// an unknown rule name, and an allow that covers no finding.
pub fn parse(s: &str) -> u32 {
    // lint:allow(P1)
    s.parse().unwrap()
}

pub fn parse2(s: &str) -> u32 {
    // lint:allow(Q9): no such rule exists
    s.parse().unwrap()
}

pub fn clean(x: u32) -> u32 {
    // lint:allow(D1): nothing on the next line trips D1
    x + 1
}
