// Fixture: P1 negative — Result propagation, plus one justified
// suppression with a reason (counted as suppressed, not as a finding).
pub fn parse(s: &str) -> Result<u32, std::num::ParseIntError> {
    s.parse()
}

pub fn header_len(buf: &[u8]) -> u32 {
    // lint:allow(P1): the 4-byte slice is carved by the bounds check above, so the conversion is infallible
    u32::from_le_bytes(buf[..4].try_into().unwrap())
}
