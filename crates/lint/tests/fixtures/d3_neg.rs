// Fixture: D3 negative — all randomness flows through the seeded Rng.
use sage_util::Rng;

pub fn roll(seed: u64) -> u64 {
    let mut rng = Rng::new(seed);
    rng.next_u64() % 6
}
