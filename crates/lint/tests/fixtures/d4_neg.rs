//! D4 negative: per-task results reduced in index order after the parallel
//! region, and closure-local accumulators — both deterministic shapes.

pub fn ordered_sum(threads: usize, xs: &[f64]) -> f64 {
    let parts = sage_util::par_map_range(threads, xs.len(), |i| xs[i] * 2.0);
    let mut total: f64 = 0.0;
    for p in parts {
        total += p;
    }
    total
}

pub fn local_acc(threads: usize, rows: &[Vec<f64>]) -> Vec<f64> {
    sage_util::par_map_range(threads, rows.len(), |i| {
        let mut acc: f64 = 0.0;
        for &v in &rows[i] {
            acc += v;
        }
        acc
    })
}

pub fn integer_counts(threads: usize, xs: &[u64]) -> u64 {
    let mut hits: u64 = 0;
    let parts = sage_util::par_map_range(threads, xs.len(), |i| xs[i] & 1);
    for p in parts {
        hits += p;
    }
    hits
}
