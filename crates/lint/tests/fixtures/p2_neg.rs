//! P2 negative: the panicking fn documents its contract with a `# Panics`
//! section, which absorbs the taint before it reaches the public surface.

static TABLE: [(&str, u32); 2] = [("cubic", 1), ("bbr", 2)];

pub fn parse_scheme(name: &str) -> u32 {
    lookup(name)
}

/// Resolve a scheme name against the static table.
///
/// # Panics
///
/// Panics on an unknown name — the table is static, so that is a
/// programming error, not an input condition.
fn lookup(name: &str) -> u32 {
    TABLE
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, v)| *v)
        // lint:allow(P1): the caller contract requires a known scheme name; an unknown name is a programming error
        .unwrap()
}
