// Fixture: D1 negative — BTreeMap has a defined iteration order.
use std::collections::BTreeMap;

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: BTreeMap<u32, usize> = BTreeMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}
