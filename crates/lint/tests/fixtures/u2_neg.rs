//! U2 negative: the fn encapsulating the `unsafe` block declares itself a
//! safety boundary, so no obligation escapes to public callers.

pub fn fast_copy(dst: &mut [u8], src: &[u8]) {
    inner(dst, src);
}

// SAFETY-BOUNDARY: the length assert plus Rust's aliasing rules discharge
// every precondition of copy_nonoverlapping inside this fn; callers have
// no residual obligation.
fn inner(dst: &mut [u8], src: &[u8]) {
    assert!(dst.len() >= src.len());
    // SAFETY: the length check above guarantees the destination holds
    // src.len() bytes, and distinct &mut/& borrows cannot overlap.
    unsafe { std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr(), src.len()) }
}
