//! D5 negative: the iterated type is marked `lint:stable-order`, and the
//! `fold_digest` caller is marked `lint:ordered-merge`.

// lint:stable-order — vals is a Vec visited front-to-back, so iteration
// order is a pure function of the push history.
pub struct Ring {
    vals: Vec<u64>,
}

impl Ring {
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.vals.iter()
    }

    /// Fingerprint of the ring contents.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in self.iter() {
            h ^= v;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }
}

pub fn fold_digest(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0100_0000_01b3)
}

// lint:ordered-merge — xs arrives already sorted by task index, so the
// fold visits contributions in a thread-count-independent order.
pub fn merge_shards(xs: &[u64]) -> u64 {
    let mut h = 0u64;
    for &x in xs {
        h = fold_digest(h, x);
    }
    h
}
