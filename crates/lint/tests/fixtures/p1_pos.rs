// Fixture: P1 positive — unwrap/expect/panic! in library code (three
// findings), while the #[cfg(test)] module below stays exempt.
pub fn parse(s: &str) -> u32 {
    let n: u32 = s.parse().unwrap();
    let m: u32 = s.parse().expect("digits");
    if n != m {
        panic!("impossible");
    }
    n
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let n: u32 = "7".parse().unwrap();
        assert_eq!(n, 7);
    }
}
