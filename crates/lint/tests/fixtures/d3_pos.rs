// Fixture: D3 positive — ambient entropy via a rand-style API (two
// findings: the `rand::` path and `thread_rng`).
pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..6)
}
