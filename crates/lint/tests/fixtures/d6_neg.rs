//! D6 negative: configuration flows in through an explicit argument — no
//! ambient environment read anywhere on the path.

pub struct Knobs {
    pub width: usize,
}

fn mid(k: &Knobs) -> usize {
    k.width * 2
}

pub fn api(k: &Knobs) -> usize {
    mid(k) + 1
}
