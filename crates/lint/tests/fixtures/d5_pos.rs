//! D5 positive: a digest-named fn iterating a workspace type that carries
//! no `lint:stable-order` marker, and a `fold_digest` reached from a
//! caller that is neither digest-named nor marked `lint:ordered-merge`.

pub struct Ring {
    vals: Vec<u64>,
}

impl Ring {
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.vals.iter()
    }

    /// Fingerprint of the ring contents.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in self.iter() {
            h ^= v;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        h
    }
}

pub fn fold_digest(h: u64, x: u64) -> u64 {
    (h ^ x).wrapping_mul(0x0100_0000_01b3)
}

pub fn scramble(xs: &[u64]) -> u64 {
    let mut h = 0u64;
    for &x in xs {
        h = fold_digest(h, x);
    }
    h
}
