//! Fixture corpus: one positive (rule fires) and one negative (clean or
//! properly suppressed) case per rule, consumed as text. The fixtures
//! live under `tests/fixtures/`, which the workspace walk skips, so the
//! intentional violations never pollute the self-lint.

use sage_lint::{analyze, FileClass, FileOutcome, Rule};

/// Analyse a fixture as if it were library code in a digest-covered crate.
fn lint_as_lib(src: &str) -> FileOutcome {
    let class = FileClass::from_rel_path("crates/netsim/src/fixture.rs");
    analyze("crates/netsim/src/fixture.rs", &class, src)
}

fn count(out: &FileOutcome, rule: Rule) -> usize {
    out.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn d1_positive_flags_every_hash_map_mention() {
    let out = lint_as_lib(include_str!("fixtures/d1_pos.rs"));
    assert_eq!(count(&out, Rule::D1), 3, "{:?}", out.findings);
    assert_eq!(out.findings.len(), 3);
}

#[test]
fn d1_negative_btree_map_is_clean() {
    let out = lint_as_lib(include_str!("fixtures/d1_neg.rs"));
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn d2_positive_flags_clock_thread_and_channel() {
    let out = lint_as_lib(include_str!("fixtures/d2_pos.rs"));
    // Instant ×2, mpsc ×2, thread::spawn ×1.
    assert_eq!(count(&out, Rule::D2), 5, "{:?}", out.findings);
    assert_eq!(out.findings.len(), 5);
}

#[test]
fn d2_negative_sim_time_and_pool_are_clean() {
    let out = lint_as_lib(include_str!("fixtures/d2_neg.rs"));
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn d2_positive_is_exempt_in_bench() {
    let class = FileClass::from_rel_path("crates/bench/src/fixture.rs");
    let out = analyze(
        "crates/bench/src/fixture.rs",
        &class,
        include_str!("fixtures/d2_pos.rs"),
    );
    assert_eq!(count(&out, Rule::D2), 0, "{:?}", out.findings);
}

#[test]
fn d3_positive_flags_rand_path_and_thread_rng() {
    let out = lint_as_lib(include_str!("fixtures/d3_pos.rs"));
    assert_eq!(count(&out, Rule::D3), 2, "{:?}", out.findings);
    assert_eq!(out.findings.len(), 2);
}

#[test]
fn d3_negative_seeded_rng_is_clean() {
    let out = lint_as_lib(include_str!("fixtures/d3_neg.rs"));
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn d3_applies_even_in_bench() {
    let class = FileClass::from_rel_path("crates/bench/src/fixture.rs");
    let out = analyze(
        "crates/bench/src/fixture.rs",
        &class,
        include_str!("fixtures/d3_pos.rs"),
    );
    assert_eq!(count(&out, Rule::D3), 2, "{:?}", out.findings);
}

#[test]
fn u1_positive_flags_bare_unsafe() {
    let out = lint_as_lib(include_str!("fixtures/u1_pos.rs"));
    assert_eq!(count(&out, Rule::U1), 1, "{:?}", out.findings);
    assert_eq!(out.findings.len(), 1);
}

#[test]
fn u1_negative_accepts_both_safety_placements() {
    let out = lint_as_lib(include_str!("fixtures/u1_neg.rs"));
    assert!(out.findings.is_empty(), "{:?}", out.findings);
}

#[test]
fn p1_positive_flags_unwrap_expect_panic_outside_tests() {
    let out = lint_as_lib(include_str!("fixtures/p1_pos.rs"));
    assert_eq!(count(&out, Rule::P1), 3, "{:?}", out.findings);
    assert_eq!(out.findings.len(), 3);
}

#[test]
fn p1_negative_result_and_justified_allow_are_clean() {
    let out = lint_as_lib(include_str!("fixtures/p1_neg.rs"));
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.suppressed.len(), 1);
    assert_eq!(out.suppressed[0].rule, Rule::P1);
    assert!(!out.suppressed[0].reason.is_empty());
}

#[test]
fn p1_positive_is_exempt_in_tests_dir() {
    let class = FileClass::from_rel_path("crates/netsim/tests/fixture.rs");
    let out = analyze(
        "crates/netsim/tests/fixture.rs",
        &class,
        include_str!("fixtures/p1_pos.rs"),
    );
    assert_eq!(count(&out, Rule::P1), 0, "{:?}", out.findings);
}

#[test]
fn a0_positive_flags_missing_reason_unknown_rule_and_unused_allow() {
    let out = lint_as_lib(include_str!("fixtures/a0_pos.rs"));
    assert_eq!(count(&out, Rule::A0), 3, "{:?}", out.findings);
    // The two malformed allows suppress nothing, so their unwraps fire.
    assert_eq!(count(&out, Rule::P1), 2, "{:?}", out.findings);
    assert!(out.suppressed.is_empty());
}

// ---------------------------------------------------------------------------
// Interprocedural rules (D4/D5/D6/U2/P2) go through the full pipeline via
// `analyze_sources`, since they need the symbol table and call graph.
// ---------------------------------------------------------------------------

use sage_lint::{analyze_sources, WorkspaceReport};
use std::collections::BTreeMap;

/// Run the whole pipeline over in-memory sources classified as lib code.
fn lint_pipeline(files: &[(&str, &str)]) -> WorkspaceReport {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_sources(&sources, &BTreeMap::new())
}

fn wcount(r: &WorkspaceReport, rule: Rule) -> usize {
    r.findings.iter().filter(|f| f.rule == rule).count()
}

#[test]
fn d4_positive_flags_captured_float_accumulation_in_par_closures() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/d4_pos.rs"),
    )]);
    assert_eq!(wcount(&r, Rule::D4), 2, "{:?}", r.findings);
    assert_eq!(r.findings.len(), 2);
}

#[test]
fn d4_negative_ordered_reduce_and_local_acc_are_clean() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/d4_neg.rs"),
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn d5_positive_flags_unmarked_iteration_and_unordered_fold_digest() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/d5_pos.rs"),
    )]);
    assert_eq!(wcount(&r, Rule::D5), 2, "{:?}", r.findings);
    assert_eq!(r.findings.len(), 2);
}

#[test]
fn d5_negative_markers_clear_both_shapes() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/d5_neg.rs"),
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn d6_positive_flags_ambient_env_read_with_call_path() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/d6_pos.rs"),
    )]);
    assert_eq!(wcount(&r, Rule::D6), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert!(
        !f.path.is_empty(),
        "D6 findings must carry call-path evidence: {f:?}"
    );
}

#[test]
fn d6_negative_explicit_config_argument_is_clean() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/d6_neg.rs"),
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn d6_positive_is_sanctioned_inside_the_env_cfg_layer() {
    let r = lint_pipeline(&[(
        "crates/util/src/env_cfg.rs",
        include_str!("fixtures/d6_pos.rs"),
    )]);
    assert_eq!(wcount(&r, Rule::D6), 0, "{:?}", r.findings);
}

#[test]
fn u2_positive_flags_public_api_reaching_undeclared_unsafe() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/u2_pos.rs"),
    )]);
    assert_eq!(wcount(&r, Rule::U2), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert!(
        f.path.iter().any(|q| q.contains("fast_copy")),
        "U2 path must start at the public fn: {f:?}"
    );
}

#[test]
fn u2_negative_safety_boundary_doc_absorbs_the_obligation() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/u2_neg.rs"),
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
}

#[test]
fn p2_positive_flags_public_api_reaching_undocumented_panic() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/p2_pos.rs"),
    )]);
    assert_eq!(wcount(&r, Rule::P2), 1, "{:?}", r.findings);
    let f = &r.findings[0];
    assert!(
        !f.path.is_empty(),
        "P2 findings must carry call-path evidence: {f:?}"
    );
    // The site-level P1 suppression stays honored; P2 tracks the contract.
    assert_eq!(r.suppressed.len(), 1);
}

#[test]
fn p2_negative_panics_doc_absorbs_the_taint() {
    let r = lint_pipeline(&[(
        "crates/netsim/src/fixture.rs",
        include_str!("fixtures/p2_neg.rs"),
    )]);
    assert!(r.findings.is_empty(), "{:?}", r.findings);
    assert_eq!(r.suppressed.len(), 1);
}
