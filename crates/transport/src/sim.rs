//! The discrete-event simulation binding flows to a bottleneck path —
//! the equivalent of one Mahimahi shell run.

use crate::cc::{CongestionControl, SocketView};
use crate::flow::{Ack, Flow};
use sage_netsim::aqm::AqmKind;
use sage_netsim::engine::EventQueue;
use sage_netsim::faults::{FaultInjector, FaultPlan, FaultStats, ForwardVerdict};
use sage_netsim::link::LinkModel;
use sage_netsim::packet::{FlowId, Packet};
use sage_netsim::queue::{BottleneckPath, EnqueueOutcome};
use sage_netsim::time::{from_ms, Nanos, MILLIS, SECONDS};
use sage_netsim::topology::Topology;
use sage_util::{percentile, Rng};

/// Network-level configuration of a run.
pub struct SimConfig {
    pub link: LinkModel,
    pub buffer_bytes: u64,
    pub aqm: AqmKind,
    /// Minimum round-trip propagation delay in milliseconds (split evenly
    /// between the forward and return path).
    pub rtt_ms: f64,
    /// Independent per-packet random loss probability on the forward path.
    pub random_loss: f64,
    pub duration: Nanos,
    pub seed: u64,
    /// Monitor/action interval (the GR unit's timestep); 10 ms by default.
    pub monitor_interval: Nanos,
    /// Uniform jitter bound applied to the ACK return path (models end-host
    /// timing noise; breaks the deterministic phase-lock that synchronised
    /// flows would otherwise exhibit over a DropTail queue). Default 200 us.
    pub ack_jitter: Nanos,
    /// Adversarial fault injection (burst loss, corruption, reordering,
    /// duplication, blackouts, jitter spikes, ACK compression). The default
    /// plan injects nothing.
    pub faults: FaultPlan,
    /// Hops downstream of the primary bottleneck. Empty (the default) is the
    /// classic single-bottleneck path, bit-identical to the pre-topology
    /// simulator. Each extra hop owns a queue + link + AQM + fault injector;
    /// its propagation delay adds to the forward path on top of `rtt_ms`.
    pub topology: Topology,
    /// Flight-recorder span base: flow `id` records under span
    /// `span_base + id + 1` (0 default — spans stay run-local). Eval cells
    /// set a per-cell base so merged dumps keep cells distinguishable.
    /// Observability metadata only — never feeds simulation state.
    pub span_base: u64,
}

impl SimConfig {
    pub fn new(link: LinkModel, buffer_bytes: u64, rtt_ms: f64, duration: Nanos) -> Self {
        SimConfig {
            link,
            buffer_bytes,
            aqm: AqmKind::TailDrop,
            rtt_ms,
            random_loss: 0.0,
            duration,
            seed: 1,
            monitor_interval: 10 * MILLIS,
            ack_jitter: 200_000,
            faults: FaultPlan::default(),
            topology: Topology::single(),
            span_base: 0,
        }
    }

    /// Same configuration with a fault plan attached.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Same configuration with downstream hops attached.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }
}

/// One flow participating in a run.
pub struct FlowConfig {
    pub cca: Box<dyn CongestionControl>,
    pub start: Nanos,
    pub stop: Option<Nanos>,
    /// Managed by the batch controller of [`Simulation::run_batched`]: the
    /// flow's tick observation is collected into the controller's batch
    /// instead of driving `cca.on_tick` (the cca is typically a
    /// [`crate::cc::RemoteCwnd`] shell).
    pub batched: bool,
}

impl FlowConfig {
    pub fn at_start(cca: Box<dyn CongestionControl>) -> Self {
        FlowConfig {
            cca,
            start: 0,
            stop: None,
            batched: false,
        }
    }

    pub fn starting_at(cca: Box<dyn CongestionControl>, start: Nanos) -> Self {
        FlowConfig {
            cca,
            start,
            stop: None,
            batched: false,
        }
    }

    /// Mark the flow as batch-controlled.
    pub fn batched(mut self) -> Self {
        self.batched = true;
        self
    }
}

/// Per-tick observation handed to monitors (one per flow per tick).
#[derive(Debug, Clone, Copy)]
pub struct TickRecord {
    pub now: Nanos,
    /// Receiver goodput over the tick, bits/s.
    pub goodput_bps: f64,
    /// Mean one-way delay of packets delivered this tick, seconds (0 if none).
    pub mean_owd: f64,
    /// Bytes newly lost during this tick (sender estimate).
    pub lost_bytes_delta: u64,
    /// Congestion window applied during this tick, packets.
    pub cwnd_pkts: f64,
}

/// Summary statistics for one flow after a run.
#[derive(Debug, Clone)]
pub struct FlowStats {
    pub name: String,
    /// Mean receiver goodput over the flow's active period, Mbit/s.
    pub avg_goodput_mbps: f64,
    /// Mean one-way delay of delivered packets, ms.
    pub avg_owd_ms: f64,
    /// 95th-percentile one-way delay, ms.
    pub p95_owd_ms: f64,
    /// Mean smoothed RTT over ticks, ms.
    pub avg_srtt_ms: f64,
    pub delivered_bytes: u64,
    pub lost_pkts: u64,
    pub retx_pkts: u64,
    pub sent_pkts: u64,
    /// Times the flow aborted and cleanly restarted after consecutive RTOs.
    pub restarts: u64,
    /// Active sending duration, seconds.
    pub active_secs: f64,
}

/// Observer invoked once per flow per monitor tick.
pub trait Monitor {
    fn on_tick(&mut self, flow_idx: usize, view: &SocketView, tick: &TickRecord);
}

/// A no-op monitor.
pub struct NullMonitor;
impl Monitor for NullMonitor {
    fn on_tick(&mut self, _flow_idx: usize, _view: &SocketView, _tick: &TickRecord) {}
}

/// One flow's pre-action observation within a batched monitor tick.
#[derive(Debug, Clone, Copy)]
pub struct BatchObs {
    pub flow_idx: usize,
    pub view: SocketView,
}

/// A controller serving many flows at once. Each monitor tick it receives
/// the pre-action views of every active batch-managed flow (in flow-index
/// order — deterministic) and applies actions by writing the
/// [`crate::cc::SharedCwnd`] cells it holds.
pub trait BatchCc {
    fn on_batch_tick(&mut self, now: Nanos, obs: &[BatchObs]);
}

enum Ev {
    /// Hop `h` finished serving a packet (lazily validated against the
    /// hop's current in-service finish time).
    HopComplete(u32, Nanos),
    /// Data packet reaches hop `h`'s queue after inter-hop propagation.
    HopArrive(u32, Packet),
    /// Data packet reaches the receiver.
    DataArrive(Packet),
    /// ACK reaches the sender.
    AckArrive(Ack),
    /// RTO timer for a flow (lazily validated against the flow's deadline).
    Rto(FlowId),
    /// Global monitor tick.
    Tick,
    /// Flow lifecycle.
    FlowStart(FlowId),
    FlowStop(FlowId),
    /// Pacing gate re-opened for a flow.
    PacedSend(FlowId),
}

/// Per-hop cumulative counters, for conservation accounting and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopCounters {
    pub enqueued: u64,
    pub dropped: u64,
    pub delivered: u64,
    /// Packets still buffered at the instant of the snapshot.
    pub backlog_packets: usize,
    /// Packets occupying the hop's link (0 or 1).
    pub in_service_packets: usize,
}

/// A complete multi-hop path simulation (a single bottleneck by default).
pub struct Simulation {
    cfg: SimConfig,
    /// The path's hop chain: hop 0 is the primary bottleneck from the
    /// config; downstream hops come from [`SimConfig::topology`].
    hops: Vec<BottleneckPath>,
    /// Per-hop fault injectors. Hop 0's is driven by `cfg.faults` and also
    /// owns the ACK return path (ACKs bypass downstream queues — they are
    /// small — but downstream blackouts still drop the data packets that
    /// would have generated them).
    hop_faults: Vec<FaultInjector>,
    /// Propagation delay crossed before entering each hop's queue (index 0
    /// is unused: the sender feeds hop 0 directly).
    hop_prop: Vec<Nanos>,
    flows: Vec<Flow>,
    /// Per-flow: managed by the batch controller (see [`FlowConfig::batched`]).
    batched: Vec<bool>,
    events: EventQueue<Ev>,
    now: Nanos,
    fwd_owd: Nanos,
    ret_owd: Nanos,
    /// Per-flow pacing state: earliest next permitted transmission.
    pace_next: Vec<Nanos>,
    /// Whether a PacedSend wake-up is already scheduled for the flow
    /// (prevents duplicate self-rearming events).
    pace_armed: Vec<bool>,
    /// Per-flow lost-bytes counter at the previous tick.
    prev_lost_bytes: Vec<u64>,
    rng: sage_util::Rng,
    /// Per-flow sum/count of srtt over ticks (for FlowStats).
    srtt_sum: Vec<f64>,
    srtt_cnt: Vec<u64>,
}

impl Simulation {
    pub fn new(cfg: SimConfig, flow_cfgs: Vec<FlowConfig>) -> Self {
        // Hop 0 keeps the exact legacy seeds so single-bottleneck runs stay
        // byte-identical to the pre-topology simulator; downstream hops draw
        // independent streams split statelessly from the run seed.
        let mut hops = vec![BottleneckPath::new(
            cfg.link.clone(),
            cfg.buffer_bytes,
            cfg.aqm.build(cfg.seed),
            cfg.random_loss,
            cfg.seed,
        )];
        let mut hop_faults = vec![FaultInjector::new(cfg.faults.clone(), cfg.seed)];
        let mut hop_prop: Vec<Nanos> = vec![0];
        for (i, hop) in cfg.topology.extra_hops.iter().enumerate() {
            let hop_seed = Rng::stream_seed(cfg.seed, 0xB09A_0000 + i as u64 + 1);
            hops.push(BottleneckPath::new(
                hop.link.clone(),
                hop.buffer_bytes,
                hop.aqm.build(hop_seed),
                0.0,
                hop_seed,
            ));
            hop_faults.push(FaultInjector::new(
                hop.faults.clone(),
                Rng::stream_seed(cfg.seed, 0xFA57_0000 + i as u64 + 1),
            ));
            hop_prop.push(from_ms(hop.prop_ms));
        }
        for hop in hops.iter_mut() {
            hop.set_span_base(cfg.span_base);
        }
        let half = from_ms(cfg.rtt_ms / 2.0);
        let cfg_seed = cfg.seed;
        let mut flows = Vec::new();
        let mut batched = Vec::new();
        let mut events = EventQueue::new();
        for (i, fc) in flow_cfgs.into_iter().enumerate() {
            let id = i as FlowId;
            let mut f = Flow::new(id, fc.cca, fc.start, fc.stop);
            f.span = cfg.span_base + id as u64 + 1;
            events.schedule(fc.start, Ev::FlowStart(id));
            if let Some(stop) = fc.stop {
                events.schedule(stop, Ev::FlowStop(id));
            }
            flows.push(f);
            batched.push(fc.batched);
        }
        events.schedule(cfg.monitor_interval, Ev::Tick);
        let n = flows.len();
        Simulation {
            cfg,
            hops,
            hop_faults,
            hop_prop,
            flows,
            batched,
            events,
            now: 0,
            fwd_owd: half,
            ret_owd: half,
            pace_next: vec![0; n],
            pace_armed: vec![false; n],
            prev_lost_bytes: vec![0; n],
            rng: sage_util::Rng::new(cfg_seed ^ 0xACE1),
            srtt_sum: vec![0.0; n],
            srtt_cnt: vec![0; n],
        }
    }

    /// Run to completion, invoking `monitor` once per active flow per tick.
    pub fn run(&mut self, monitor: &mut dyn Monitor) -> Vec<FlowStats> {
        self.run_inner(monitor, &mut None)
    }

    /// Like [`Simulation::run`], but flows marked [`FlowConfig::batched`]
    /// are served by `ctrl`: each tick their pre-action views are collected
    /// and handed to `ctrl.on_batch_tick` in one call (phase 1), then the
    /// per-flow tick accounting runs with the post-action windows (phase 2).
    pub fn run_batched(
        &mut self,
        monitor: &mut dyn Monitor,
        ctrl: &mut dyn BatchCc,
    ) -> Vec<FlowStats> {
        let mut ctrl = Some(ctrl);
        self.run_inner(monitor, &mut ctrl)
    }

    fn run_inner(
        &mut self,
        monitor: &mut dyn Monitor,
        ctrl: &mut Option<&mut dyn BatchCc>,
    ) -> Vec<FlowStats> {
        while let Some((t, ev)) = self.events.pop() {
            if t > self.cfg.duration {
                break;
            }
            self.now = t;
            match ev {
                Ev::HopComplete(h, expected) => {
                    let h = h as usize;
                    if self.hops[h].next_completion() == Some(expected) {
                        if let Some(dep) = self.hops[h].complete(self.now) {
                            match self.hop_faults[h].on_forward(dep.at) {
                                ForwardVerdict::Drop(_) => {
                                    // Lost on the wire: surfaces to the
                                    // sender as a missing ACK.
                                }
                                ForwardVerdict::Deliver {
                                    extra_delay,
                                    duplicate,
                                    dup_gap,
                                } => {
                                    if h + 1 < self.hops.len() {
                                        // Next hop's queue, after the
                                        // inter-hop propagation delay.
                                        let arrive = dep.at + self.hop_prop[h + 1] + extra_delay;
                                        let nh = (h + 1) as u32;
                                        self.events.schedule(arrive, Ev::HopArrive(nh, dep.pkt));
                                        if duplicate {
                                            self.events.schedule(
                                                arrive + dup_gap,
                                                Ev::HopArrive(nh, dep.pkt),
                                            );
                                        }
                                    } else {
                                        let arrive = dep.at + self.fwd_owd + extra_delay;
                                        self.events.schedule(arrive, Ev::DataArrive(dep.pkt));
                                        if duplicate {
                                            self.events.schedule(
                                                arrive + dup_gap,
                                                Ev::DataArrive(dep.pkt),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                        self.schedule_hop_completion(h);
                    }
                }
                Ev::HopArrive(h, pkt) => {
                    let h = h as usize;
                    // Drops at a downstream hop surface to the sender as
                    // missing ACKs, exactly like hop-0 drops.
                    let _ = self.hops[h].enqueue(self.now, pkt);
                    self.schedule_hop_completion(h);
                }
                Ev::DataArrive(pkt) => {
                    let idx = pkt.flow as usize;
                    let ack = self.flows[idx].on_data(self.now, pkt);
                    let jitter = if self.cfg.ack_jitter > 0 {
                        (self.rng.uniform() * self.cfg.ack_jitter as f64) as Nanos
                    } else {
                        0
                    };
                    let nominal = self.now + self.ret_owd + jitter;
                    if let Some(release) = self.hop_faults[0].on_ack(self.now, nominal) {
                        self.events.schedule(release, Ev::AckArrive(ack));
                    }
                }
                Ev::AckArrive(ack) => {
                    let idx = ack.flow as usize;
                    let actions = self.flows[idx].on_ack(self.now, ack);
                    if let Some(d) = actions.rearm_rto {
                        self.events.schedule(d, Ev::Rto(ack.flow));
                    }
                    self.try_send(idx);
                }
                Ev::Rto(fid) => {
                    let idx = fid as usize;
                    let deadline = self.flows[idx].rto_deadline;
                    if deadline.is_some_and(|d| d <= self.now) {
                        if let Some(next) = self.flows[idx].on_rto(self.now) {
                            self.events.schedule(next, Ev::Rto(fid));
                        }
                        self.try_send(idx);
                    }
                }
                Ev::Tick => {
                    self.do_tick(monitor, ctrl);
                    self.events
                        .schedule(self.now + self.cfg.monitor_interval, Ev::Tick);
                }
                Ev::FlowStart(fid) => {
                    let idx = fid as usize;
                    self.flows[idx].active = true;
                    let now = self.now;
                    self.flows[idx].cca.init(now, crate::MSS);
                    self.try_send(idx);
                }
                Ev::FlowStop(fid) => {
                    let idx = fid as usize;
                    self.flows[idx].active = false;
                    self.flows[idx].done = true;
                }
                Ev::PacedSend(fid) => {
                    self.pace_armed[fid as usize] = false;
                    self.try_send(fid as usize);
                }
            }
        }
        self.collect_stats()
    }

    fn do_tick(&mut self, monitor: &mut dyn Monitor, ctrl: &mut Option<&mut dyn BatchCc>) {
        let interval_s = self.cfg.monitor_interval as f64 / SECONDS as f64;
        let mut collected: Vec<usize> = Vec::new();
        for idx in 0..self.flows.len() {
            if !self.flows[idx].active {
                continue;
            }
            if self.batched[idx] && ctrl.is_some() {
                // Phase 1 of the batched tick: collect now, act once on the
                // whole batch below.
                collected.push(idx);
                continue;
            }
            let now = self.now;
            let view = self.flows[idx].socket_view(now);
            {
                let f = &mut self.flows[idx];
                f.cca.on_tick(now, &view);
            }
            self.finish_tick(idx, interval_s, monitor);
        }
        if collected.is_empty() {
            return;
        }
        let now = self.now;
        let obs: Vec<BatchObs> = collected
            .iter()
            .map(|&idx| BatchObs {
                flow_idx: idx,
                view: self.flows[idx].socket_view(now),
            })
            .collect();
        if let Some(c) = ctrl.as_mut() {
            c.on_batch_tick(now, &obs);
        }
        for &idx in &collected {
            self.finish_tick(idx, interval_s, monitor);
        }
    }

    /// Phase 2 of a monitor tick for one flow: rebuild the view after the
    /// action so monitors observe the post-action cwnd (the GR unit records
    /// the action's effect), account tick statistics, and try sending.
    fn finish_tick(&mut self, idx: usize, interval_s: f64, monitor: &mut dyn Monitor) {
        let now = self.now;
        let view = self.flows[idx].socket_view(now);
        let (bytes, owd) = self.flows[idx].take_tick();
        let lost_total = self.flows[idx].lost_bytes_total;
        let lost_delta = lost_total.saturating_sub(self.prev_lost_bytes[idx]);
        self.prev_lost_bytes[idx] = lost_total;
        let tick = TickRecord {
            now,
            goodput_bps: bytes as f64 * 8.0 / interval_s,
            mean_owd: owd,
            lost_bytes_delta: lost_delta,
            cwnd_pkts: view.cwnd_pkts,
        };
        self.srtt_sum[idx] += view.srtt;
        self.srtt_cnt[idx] += 1;
        monitor.on_tick(idx, &view, &tick);
        // Window may have changed (tick-driven CCAs); try sending.
        self.try_send(idx);
    }

    /// Transmit as many packets as the window and pacing gate allow.
    fn try_send(&mut self, idx: usize) {
        loop {
            let now = self.now;
            let f = &mut self.flows[idx];
            if !f.active {
                return;
            }
            if !(f.window_open() || (f.has_retransmit() && f.pipe_pkts() == 0)) {
                // Always allow a retransmission when nothing is in flight,
                // otherwise recovery can deadlock with a tiny window.
                return;
            }
            // Pacing gate.
            if let Some(bps) = f.cca.pacing_bps() {
                if bps > 0.0 && now < self.pace_next[idx] {
                    if !self.pace_armed[idx] {
                        self.pace_armed[idx] = true;
                        let at = self.pace_next[idx];
                        self.events.schedule(at, Ev::PacedSend(idx as FlowId));
                    }
                    return;
                }
            }
            let pkt = f.make_packet(now);
            if let Some(bps) = f.cca.pacing_bps() {
                if bps > 0.0 {
                    let gap = (pkt.bytes as f64 * 8.0 / bps * SECONDS as f64) as Nanos;
                    self.pace_next[idx] = now.max(self.pace_next[idx]) + gap;
                }
            }
            if let Some(d) = f.ensure_rto(now) {
                self.events.schedule(d, Ev::Rto(idx as FlowId));
            }
            match self.hops[0].enqueue(now, pkt) {
                EnqueueOutcome::Queued | EnqueueOutcome::Dropped(_) => {
                    // Drops surface to the sender through missing ACKs; the
                    // path records them for its own statistics either way.
                }
            }
            self.schedule_hop_completion(0);
        }
    }

    fn schedule_hop_completion(&mut self, hop: usize) {
        if let Some(t) = self.hops[hop].next_completion() {
            self.events.schedule(t, Ev::HopComplete(hop as u32, t));
        }
    }

    fn collect_stats(&mut self) -> Vec<FlowStats> {
        let mut out = Vec::new();
        for (idx, f) in self.flows.iter().enumerate() {
            let end = f.stop.unwrap_or(self.cfg.duration).min(self.cfg.duration);
            let active = end.saturating_sub(f.start) as f64 / SECONDS as f64;
            let goodput = if active > 0.0 {
                f.rcv_bytes_total as f64 * 8.0 / active / 1e6
            } else {
                0.0
            };
            let owds: Vec<f64> = f.owd_samples.iter().map(|&x| x as f64 * 1e3).collect();
            out.push(FlowStats {
                name: f.cca.name().to_string(),
                avg_goodput_mbps: goodput,
                avg_owd_ms: sage_util::mean(&owds),
                p95_owd_ms: percentile(&owds, 95.0),
                avg_srtt_ms: if self.srtt_cnt[idx] > 0 {
                    self.srtt_sum[idx] / self.srtt_cnt[idx] as f64 * 1e3
                } else {
                    0.0
                },
                delivered_bytes: f.rcv_bytes_total,
                lost_pkts: f.lost_pkts_total,
                retx_pkts: f.retx_pkts_total,
                sent_pkts: f.sent_pkts_total,
                restarts: f.restarts_total,
                active_secs: active,
            });
        }
        out
    }

    /// Total packets dropped at queues, summed over every hop.
    pub fn path_drops(&self) -> u64 {
        self.hops.iter().map(|h| h.total_dropped).sum()
    }

    /// Counters of everything hop 0's fault injector did during the run.
    pub fn fault_stats(&self) -> FaultStats {
        self.hop_faults[0].stats
    }

    /// Per-hop fault-injector counters, hop order.
    pub fn hop_fault_stats(&self) -> Vec<FaultStats> {
        self.hop_faults.iter().map(|f| f.stats).collect()
    }

    /// Per-hop queue counters, hop order. The conservation invariant
    /// `enqueued == dropped + delivered + backlog + in_service` holds for
    /// every hop at every instant the event loop is quiescent.
    pub fn hop_counters(&self) -> Vec<HopCounters> {
        self.hops
            .iter()
            .map(|h| HopCounters {
                enqueued: h.total_enqueued,
                dropped: h.total_dropped,
                delivered: h.total_delivered,
                backlog_packets: h.backlog_packets(),
                in_service_packets: h.in_service_packets(),
            })
            .collect()
    }

    /// Number of hops on the forward path (1 = single bottleneck).
    pub fn hop_count(&self) -> usize {
        self.hops.len()
    }

    /// Access a flow (for inspection in tests and figures).
    pub fn flow(&self, idx: usize) -> &Flow {
        &self.flows[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{AckEvent, CaState};

    /// Minimal AIMD Reno for end-to-end sanity tests (real schemes live in
    /// `sage-heuristics`).
    struct MiniReno {
        cwnd: f64,
        ssthresh: f64,
    }
    impl MiniReno {
        fn new() -> Self {
            MiniReno {
                cwnd: crate::INIT_CWND,
                ssthresh: f64::INFINITY,
            }
        }
    }
    impl CongestionControl for MiniReno {
        fn name(&self) -> &'static str {
            "mini-reno"
        }
        fn on_ack(&mut self, ack: &AckEvent, _s: &SocketView) {
            for _ in 0..ack.newly_acked_pkts {
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0;
                } else {
                    self.cwnd += 1.0 / self.cwnd;
                }
            }
        }
        fn on_congestion_event(&mut self, _now: Nanos, _s: &SocketView) {
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
        }
        fn on_rto(&mut self, _now: Nanos, _s: &SocketView) {
            self.ssthresh = (self.cwnd / 2.0).max(2.0);
            self.cwnd = 2.0;
        }
        fn cwnd_pkts(&self) -> f64 {
            self.cwnd
        }
        fn ssthresh_pkts(&self) -> f64 {
            self.ssthresh
        }
    }

    fn run_one(mbps: f64, rtt_ms: f64, bdp_mult: f64, secs: f64) -> FlowStats {
        let bdp = (mbps * 1e6 / 8.0 * rtt_ms / 1e3) as u64;
        let cfg = SimConfig::new(
            LinkModel::Constant { mbps },
            ((bdp as f64 * bdp_mult) as u64).max(3000),
            rtt_ms,
            sage_netsim::time::from_secs(secs),
        );
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(MiniReno::new()))]);
        sim.run(&mut NullMonitor).remove(0)
    }

    #[test]
    fn reno_fills_a_small_pipe() {
        let s = run_one(12.0, 20.0, 2.0, 10.0);
        assert!(
            s.avg_goodput_mbps > 10.0,
            "expected near-full utilisation, got {} Mbps",
            s.avg_goodput_mbps
        );
        assert!(
            s.avg_owd_ms >= 10.0,
            "one-way delay below propagation? {}",
            s.avg_owd_ms
        );
    }

    #[test]
    fn reno_fills_a_larger_pipe() {
        let s = run_one(48.0, 40.0, 2.0, 15.0);
        assert!(s.avg_goodput_mbps > 40.0, "got {} Mbps", s.avg_goodput_mbps);
    }

    #[test]
    fn losses_occur_with_tiny_buffer() {
        let s = run_one(24.0, 20.0, 0.25, 10.0);
        assert!(s.lost_pkts > 0, "tiny buffer must cause losses");
        assert!(
            s.avg_goodput_mbps > 5.0,
            "still makes progress: {}",
            s.avg_goodput_mbps
        );
    }

    #[test]
    fn delay_bounded_by_buffer() {
        // 1 BDP buffer: worst-case queue is one extra RTT; one-way delay is
        // bounded by prop/2 + buffer-drain plus service granularity.
        let s = run_one(24.0, 40.0, 1.0, 10.0);
        assert!(s.avg_owd_ms < 20.0 + 40.0 + 5.0, "owd {}", s.avg_owd_ms);
        assert!(s.p95_owd_ms >= s.avg_owd_ms);
    }

    #[test]
    fn two_flows_share_roughly_fairly() {
        let mbps = 24.0;
        let bdp = (mbps * 1e6 / 8.0 * 40.0 / 1e3) as u64;
        let cfg = SimConfig::new(
            LinkModel::Constant { mbps },
            bdp * 2,
            40.0,
            sage_netsim::time::from_secs(30.0),
        );
        let mut sim = Simulation::new(
            cfg,
            vec![
                FlowConfig::at_start(Box::new(MiniReno::new())),
                FlowConfig::at_start(Box::new(MiniReno::new())),
            ],
        );
        let stats = sim.run(&mut NullMonitor);
        let total = stats[0].avg_goodput_mbps + stats[1].avg_goodput_mbps;
        assert!(total > 20.0, "total {total}");
        let ratio = stats[0].avg_goodput_mbps / stats[1].avg_goodput_mbps.max(0.01);
        assert!((0.5..=2.0).contains(&ratio), "unfair split {ratio}");
    }

    #[test]
    fn step_scenario_tracks_capacity_increase() {
        let cfg = SimConfig::new(
            LinkModel::Step {
                before_mbps: 24.0,
                after_mbps: 96.0,
                at: sage_netsim::time::from_secs(10.0),
            },
            2_000_000,
            20.0,
            sage_netsim::time::from_secs(20.0),
        );
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(MiniReno::new()))]);
        let stats = sim.run(&mut NullMonitor);
        // Average must exceed the low phase alone.
        assert!(
            stats[0].avg_goodput_mbps > 20.0,
            "got {}",
            stats[0].avg_goodput_mbps
        );
    }

    #[test]
    fn monitor_ticks_fire_at_interval() {
        struct Counter(u64);
        impl Monitor for Counter {
            fn on_tick(&mut self, _i: usize, _v: &SocketView, _t: &TickRecord) {
                self.0 += 1;
            }
        }
        let cfg = SimConfig::new(
            LinkModel::Constant { mbps: 12.0 },
            100_000,
            20.0,
            sage_netsim::time::from_secs(2.0),
        );
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(MiniReno::new()))]);
        let mut c = Counter(0);
        sim.run(&mut c);
        // 2 s at 10 ms per tick = about 200 ticks.
        assert!((190..=201).contains(&c.0), "ticks {}", c.0);
    }

    #[test]
    fn late_flow_start_respected() {
        let cfg = SimConfig::new(
            LinkModel::Constant { mbps: 12.0 },
            100_000,
            20.0,
            sage_netsim::time::from_secs(4.0),
        );
        let mut sim = Simulation::new(
            cfg,
            vec![FlowConfig::starting_at(
                Box::new(MiniReno::new()),
                sage_netsim::time::from_secs(2.0),
            )],
        );
        let stats = sim.run(&mut NullMonitor);
        assert!((stats[0].active_secs - 2.0).abs() < 1e-6);
        assert!(stats[0].delivered_bytes > 0);
    }

    #[test]
    fn batched_controller_equals_inline_cca() {
        // A batch controller that applies fixed-increment AIMD through the
        // SharedCwnd cell must reproduce the exact run of the same logic
        // implemented as an inline tick-driven CCA.
        struct FixedGrow {
            cwnd: f64,
        }
        impl CongestionControl for FixedGrow {
            fn name(&self) -> &'static str {
                "fixed-grow"
            }
            fn on_ack(&mut self, _a: &AckEvent, _s: &SocketView) {}
            fn on_congestion_event(&mut self, _now: Nanos, _s: &SocketView) {}
            fn on_rto(&mut self, _now: Nanos, _s: &SocketView) {
                self.cwnd = (self.cwnd * 0.5).max(crate::MIN_CWND);
            }
            fn on_tick(&mut self, _now: Nanos, _s: &SocketView) {
                self.cwnd = (self.cwnd + 1.0).min(200.0);
            }
            fn cwnd_pkts(&self) -> f64 {
                self.cwnd
            }
        }

        struct BatchGrow {
            cells: Vec<crate::cc::SharedCwnd>,
        }
        impl BatchCc for BatchGrow {
            fn on_batch_tick(&mut self, _now: Nanos, obs: &[BatchObs]) {
                for o in obs {
                    let cell = &self.cells[o.flow_idx];
                    cell.set((cell.get() + 1.0).min(200.0));
                }
            }
        }

        let mk_cfg = || {
            SimConfig::new(
                LinkModel::Constant { mbps: 24.0 },
                120_000,
                20.0,
                sage_netsim::time::from_secs(5.0),
            )
        };
        let mut inline_sim = Simulation::new(
            mk_cfg(),
            vec![FlowConfig::at_start(Box::new(FixedGrow {
                cwnd: crate::INIT_CWND,
            }))],
        );
        let inline = inline_sim.run(&mut NullMonitor).remove(0);

        let (cca, cell) = crate::cc::RemoteCwnd::new("fixed-grow");
        let mut batched_sim = Simulation::new(
            mk_cfg(),
            vec![FlowConfig::at_start(Box::new(cca)).batched()],
        );
        let mut ctrl = BatchGrow { cells: vec![cell] };
        let batched = batched_sim.run_batched(&mut NullMonitor, &mut ctrl);
        assert_eq!(inline.delivered_bytes, batched[0].delivered_bytes);
        assert_eq!(inline.lost_pkts, batched[0].lost_pkts);
        assert_eq!(inline.sent_pkts, batched[0].sent_pkts);
    }

    #[test]
    fn batched_flows_need_a_controller_to_move() {
        // Without run_batched, a batched flow's RemoteCwnd just holds its
        // initial window — the flow still progresses (windows never close
        // below MIN_CWND) but slowly; with the flag the controller owns it.
        let (cca, _cell) = crate::cc::RemoteCwnd::new("served");
        let cfg = SimConfig::new(
            LinkModel::Constant { mbps: 12.0 },
            100_000,
            20.0,
            sage_netsim::time::from_secs(2.0),
        );
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(cca)).batched()]);
        let stats = sim.run(&mut NullMonitor).remove(0);
        assert!(stats.delivered_bytes > 0);
    }

    #[test]
    fn parking_lot_downstream_hop_becomes_the_bottleneck() {
        // 48 Mbit/s first hop feeding a 12 Mbit/s second hop: goodput is
        // capped by the tighter downstream hop, and its queue does the
        // dropping.
        let bdp = (48.0 * 1e6 / 8.0 * 20.0 / 1e3) as u64;
        let cfg = SimConfig::new(
            LinkModel::Constant { mbps: 48.0 },
            bdp * 2,
            20.0,
            sage_netsim::time::from_secs(10.0),
        )
        .with_topology(sage_netsim::Topology {
            extra_hops: vec![sage_netsim::HopSpec::constant(12.0, bdp / 2, 2.0)],
        });
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(MiniReno::new()))]);
        let stats = sim.run(&mut NullMonitor).remove(0);
        assert_eq!(sim.hop_count(), 2);
        assert!(
            stats.avg_goodput_mbps > 8.0 && stats.avg_goodput_mbps < 13.0,
            "goodput should track the 12 Mbit/s downstream hop, got {}",
            stats.avg_goodput_mbps
        );
        let hops = sim.hop_counters();
        assert!(hops[1].dropped > 0, "tight downstream hop must drop");
        // Everything hop 1 saw was delivered by hop 0 (minus hop-0 fault
        // drops, of which there are none here).
        assert!(hops[1].enqueued <= hops[0].delivered);
    }

    #[test]
    fn single_hop_unchanged_by_empty_topology() {
        let base = run_one(24.0, 30.0, 1.0, 5.0);
        let cfg = SimConfig::new(
            LinkModel::Constant { mbps: 24.0 },
            ((24.0 * 1e6 / 8.0 * 30.0 / 1e3) as u64).max(3000),
            30.0,
            sage_netsim::time::from_secs(5.0),
        )
        .with_topology(sage_netsim::Topology::single());
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(MiniReno::new()))]);
        let s = sim.run(&mut NullMonitor).remove(0);
        assert_eq!(base.delivered_bytes, s.delivered_bytes);
        assert_eq!(base.lost_pkts, s.lost_pkts);
        assert_eq!(base.sent_pkts, s.sent_pkts);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_one(24.0, 30.0, 1.0, 5.0);
        let b = run_one(24.0, 30.0, 1.0, 5.0);
        assert_eq!(a.delivered_bytes, b.delivered_bytes);
        assert_eq!(a.lost_pkts, b.lost_pkts);
    }

    #[test]
    fn recovery_state_reached_and_left() {
        struct StateWatch {
            saw_recovery: bool,
            back_open: bool,
        }
        impl Monitor for StateWatch {
            fn on_tick(&mut self, _i: usize, v: &SocketView, _t: &TickRecord) {
                if v.ca_state == CaState::Recovery {
                    self.saw_recovery = true;
                } else if self.saw_recovery && v.ca_state == CaState::Open {
                    self.back_open = true;
                }
            }
        }
        let cfg = SimConfig::new(
            LinkModel::Constant { mbps: 24.0 },
            30_000, // small buffer forces losses
            20.0,
            sage_netsim::time::from_secs(10.0),
        );
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(MiniReno::new()))]);
        let mut w = StateWatch {
            saw_recovery: false,
            back_open: false,
        };
        sim.run(&mut w);
        assert!(w.saw_recovery, "expected fast recovery under small buffer");
        assert!(w.back_open, "expected recovery to complete");
    }
}
