//! Per-flow sender/receiver state: sequencing, SACK-equivalent scoreboard,
//! fast retransmit, NewReno partial-ACK handling, RTO, RTT and rate tracking.

use crate::cc::{AckEvent, CaState, CongestionControl, SocketView};
use crate::rate::{RateSampler, RateSnapshot};
use crate::rtt::RttEstimator;
use crate::{MIN_CWND, MSS};
use sage_netsim::packet::{FlowId, Packet};
use sage_netsim::time::{Nanos, SECONDS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Bookkeeping for one transmitted (and not yet cumulatively ACKed) packet.
#[derive(Debug, Clone, Copy)]
pub struct SentMeta {
    pub bytes: u32,
    pub sent_at: Nanos,
    pub retransmitted: bool,
    /// Selectively acknowledged (receiver holds it, ACK not yet cumulative).
    pub sacked: bool,
    /// Marked lost and awaiting retransmission.
    pub lost: bool,
    pub rate_snap: RateSnapshot,
}

/// An acknowledgement travelling back to the sender.
#[derive(Debug, Clone, Copy)]
pub struct Ack {
    pub flow: FlowId,
    /// Cumulative: all seq < ack_seq received.
    pub ack_seq: u64,
    /// The data packet that triggered this ACK (SACK-equivalent info).
    pub for_seq: u64,
    /// Echo of the data packet's transmission time.
    pub for_sent_at: Nanos,
    /// Whether the triggering packet was a retransmission (Karn's rule).
    pub for_retx: bool,
}

/// What the sender wants the simulation to do after processing an event.
#[derive(Debug, Default)]
pub struct SendActions {
    /// Rearm the RTO timer to this deadline (None = leave as is).
    pub rearm_rto: Option<Nanos>,
    /// Cancel the RTO timer (no outstanding data).
    pub cancel_rto: bool,
}

/// One end-to-end flow (sender and receiver bookkeeping in one struct since
/// the emulation is single-process).
pub struct Flow {
    pub id: FlowId,
    /// Causal span id for the flight recorder (0 = unscoped); the
    /// simulation stamps `span_base + id + 1` so eval cells get globally
    /// distinct spans. Observability metadata only — never read back.
    pub span: u64,
    pub cca: Box<dyn CongestionControl>,
    pub start: Nanos,
    pub stop: Option<Nanos>,
    pub active: bool,
    pub done: bool,

    // --- Sender state ---
    next_seq: u64,
    snd_una: u64,
    outstanding: BTreeMap<u64, SentMeta>,
    n_sacked: usize,
    n_lost: usize,
    dupacks: u32,
    /// Highest selectively acknowledged sequence (exclusive loss-marking bound).
    highest_sacked: u64,
    /// Sequences below this have already been loss-scanned (amortisation).
    loss_scan_floor: u64,
    pub ca_state: CaState,
    recovery_high: u64,
    retransmit_queue: VecDeque<u64>,
    pub rtt: RttEstimator,
    pub rate: RateSampler,
    prev_rtt: f64,
    prev_rate_bps: f64,
    pub rto_deadline: Option<Nanos>,
    rto_backoff: u32,
    /// RTOs fired since the last forward progress. When this reaches
    /// `max_consecutive_rtos` the connection is presumed dead and the flow
    /// aborts and cleanly restarts instead of backing off forever.
    consecutive_rtos: u32,
    /// Abort-and-restart threshold (Linux's `tcp_retries2` analogue).
    pub max_consecutive_rtos: u32,
    /// How many times this flow aborted and restarted after repeated RTOs.
    pub restarts_total: u64,

    // --- Cumulative sender counters ---
    pub sent_pkts_total: u64,
    pub sent_bytes_total: u64,
    pub lost_pkts_total: u64,
    pub lost_bytes_total: u64,
    pub retx_pkts_total: u64,

    // --- Receiver state ---
    rcv_nxt: u64,
    ooo: BTreeSet<u64>,
    pub rcv_bytes_total: u64,
    /// One-way delays (seconds) of packets delivered this tick.
    pub tick_owd_sum: f64,
    pub tick_owd_count: u64,
    pub tick_rcv_bytes: u64,
    /// All one-way delay samples (seconds) for percentile statistics.
    pub owd_samples: Vec<f32>,
}

impl Flow {
    pub fn new(
        id: FlowId,
        cca: Box<dyn CongestionControl>,
        start: Nanos,
        stop: Option<Nanos>,
    ) -> Self {
        Flow {
            id,
            span: 0,
            cca,
            start,
            stop,
            active: false,
            done: false,
            next_seq: 0,
            snd_una: 0,
            outstanding: BTreeMap::new(),
            n_sacked: 0,
            n_lost: 0,
            dupacks: 0,
            highest_sacked: 0,
            loss_scan_floor: 0,
            ca_state: CaState::Open,
            recovery_high: 0,
            retransmit_queue: VecDeque::new(),
            rtt: RttEstimator::new(),
            rate: RateSampler::new(),
            prev_rtt: 0.0,
            prev_rate_bps: 0.0,
            rto_deadline: None,
            rto_backoff: 0,
            consecutive_rtos: 0,
            max_consecutive_rtos: 8,
            restarts_total: 0,
            sent_pkts_total: 0,
            sent_bytes_total: 0,
            lost_pkts_total: 0,
            lost_bytes_total: 0,
            retx_pkts_total: 0,
            rcv_nxt: 0,
            ooo: BTreeSet::new(),
            rcv_bytes_total: 0,
            tick_owd_sum: 0.0,
            tick_owd_count: 0,
            tick_rcv_bytes: 0,
            owd_samples: Vec::new(),
        }
    }

    /// Packets in flight: outstanding minus SACKed minus marked-lost.
    pub fn pipe_pkts(&self) -> usize {
        self.outstanding.len() - self.n_sacked - self.n_lost
    }

    /// Effective congestion window in packets (CCA value with a floor).
    pub fn cwnd_pkts(&self) -> f64 {
        self.cca.cwnd_pkts().max(MIN_CWND)
    }

    /// Whether the window permits transmitting another packet.
    pub fn window_open(&self) -> bool {
        self.active && (self.pipe_pkts() as f64) < self.cwnd_pkts().floor().max(MIN_CWND)
    }

    /// Whether a retransmission is pending.
    pub fn has_retransmit(&self) -> bool {
        !self.retransmit_queue.is_empty()
    }

    /// Produce the next packet to transmit (retransmissions first), updating
    /// all bookkeeping. Caller must have checked `window_open`.
    pub fn make_packet(&mut self, now: Nanos) -> Packet {
        let snap = self.rate.snapshot(now);
        // Skip stale queue entries (cumulatively ACKed or SACKed since they
        // were queued).
        while let Some(seq) = self.retransmit_queue.pop_front() {
            let stale = !matches!(self.outstanding.get(&seq), Some(m) if m.lost);
            if stale {
                continue;
            }
            if let Some(meta) = self.outstanding.get_mut(&seq) {
                meta.lost = false;
                meta.retransmitted = true;
                meta.sent_at = now;
                meta.rate_snap = snap;
                self.n_lost -= 1;
                self.retx_pkts_total += 1;
                sage_obs::obs_counter!("transport.retx_pkts").inc();
                sage_obs::record(
                    sage_obs::Category::Transport,
                    sage_obs::EventKind::Retx,
                    now,
                    self.span,
                    self.id as u64,
                    seq,
                );
                let mut pkt = Packet::new(self.id, seq, meta.bytes, now);
                pkt.retransmit = true;
                return pkt;
            }
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let meta = SentMeta {
            bytes: MSS,
            sent_at: now,
            retransmitted: false,
            sacked: false,
            lost: false,
            rate_snap: snap,
        };
        self.outstanding.insert(seq, meta);
        self.sent_pkts_total += 1;
        self.sent_bytes_total += MSS as u64;
        Packet::new(self.id, seq, MSS, now)
    }

    /// Receiver: process an arriving data packet, returning the ACK to send
    /// on the return path.
    pub fn on_data(&mut self, now: Nanos, pkt: Packet) -> Ack {
        let owd = now.saturating_sub(pkt.sent_at) as f64 / SECONDS as f64;
        // Count goodput only for first-time in-order/ooo arrivals.
        let is_new = pkt.seq >= self.rcv_nxt && !self.ooo.contains(&pkt.seq);
        if is_new {
            self.rcv_bytes_total += pkt.bytes as u64;
            self.tick_rcv_bytes += pkt.bytes as u64;
            self.tick_owd_sum += owd;
            self.tick_owd_count += 1;
            self.owd_samples.push(owd as f32);
            if pkt.seq == self.rcv_nxt {
                self.rcv_nxt += 1;
                while self.ooo.remove(&self.rcv_nxt) {
                    self.rcv_nxt += 1;
                }
            } else {
                self.ooo.insert(pkt.seq);
            }
        }
        Ack {
            flow: self.id,
            ack_seq: self.rcv_nxt,
            for_seq: pkt.seq,
            for_sent_at: pkt.sent_at,
            for_retx: pkt.retransmit,
        }
    }

    /// Sender: process an arriving ACK. Returns timer actions.
    pub fn on_ack(&mut self, now: Nanos, ack: Ack) -> SendActions {
        let mut actions = SendActions::default();
        // SACK-equivalent: the triggering packet is at the receiver.
        if ack.for_seq >= ack.ack_seq {
            if let Some(meta) = self.outstanding.get_mut(&ack.for_seq) {
                if !meta.sacked {
                    meta.sacked = true;
                    if meta.lost {
                        // Was marked lost but actually arrived; unmark (the
                        // retransmit queue lazily skips it).
                        meta.lost = false;
                        self.n_lost -= 1;
                    }
                    self.n_sacked += 1;
                    self.highest_sacked = self.highest_sacked.max(ack.for_seq);
                }
            }
        }

        if ack.ack_seq > self.snd_una {
            // --- New data acknowledged ---
            let mut newly_acked_pkts = 0u64;
            let mut newly_acked_bytes = 0u64;
            // RTT sample (Karn's rule: skip retransmitted packets).
            let rtt_sample = if !ack.for_retx {
                let sample = now.saturating_sub(ack.for_sent_at) as f64 / SECONDS as f64;
                Some(sample)
            } else {
                None
            };
            // Rate sample uses the triggering packet's snapshot.
            let snap = self
                .outstanding
                .get(&ack.for_seq)
                .map(|m| m.rate_snap)
                .unwrap_or_else(|| self.rate.snapshot(now));

            let acked: Vec<u64> = self
                .outstanding
                .range(..ack.ack_seq)
                .map(|(&s, _)| s)
                .collect();
            for s in acked {
                if let Some(meta) = self.outstanding.remove(&s) {
                    if meta.sacked {
                        self.n_sacked -= 1;
                    }
                    if meta.lost {
                        self.n_lost -= 1;
                        // Remove from retransmit queue if still pending.
                        self.retransmit_queue.retain(|&q| q != s);
                    }
                    newly_acked_pkts += 1;
                    newly_acked_bytes += meta.bytes as u64;
                }
            }
            self.snd_una = ack.ack_seq;
            self.dupacks = 0;
            // Any forward progress resets exponential RTO backoff (Linux
            // behaviour); without this a loss storm can push the timer past
            // the life of the connection.
            self.rto_backoff = 0;
            self.consecutive_rtos = 0;

            if let Some(s) = rtt_sample {
                self.prev_rtt = self.rtt.latest();
                self.rtt.on_sample(now, s);
            }
            if newly_acked_bytes > 0 {
                self.prev_rate_bps = self.rate.latest_bps();
                self.rate.on_delivered(now, newly_acked_bytes, snap);
            }

            let mut exited = false;
            match self.ca_state {
                CaState::Recovery | CaState::Loss => {
                    if ack.ack_seq >= self.recovery_high {
                        exited = true;
                        self.ca_state = CaState::Open;
                        self.rto_backoff = 0;
                        let view = self.socket_view(now);
                        self.cca.on_exit_recovery(now, &view);
                    } else {
                        // Partial ACK: newly exposed holes are lost too.
                        self.mark_losses();
                    }
                }
                CaState::Disorder => {
                    self.ca_state = CaState::Open;
                }
                CaState::Open => {}
            }

            // Like Linux's tcp_cong_control: the CCA's window-growth hook is
            // suppressed during fast recovery (where PRR governs; here the
            // reduced window simply holds until recovery completes) but runs
            // in every other state — including CA_Loss, where slow start must
            // regrow the collapsed window.
            if self.ca_state != CaState::Recovery {
                let view = self.socket_view(now);
                let ev = AckEvent {
                    now,
                    newly_acked_pkts,
                    newly_acked_bytes,
                    rtt_sample,
                    exited_recovery: exited,
                };
                self.cca.on_ack(&ev, &view);
            }

            if self.outstanding.is_empty() && self.retransmit_queue.is_empty() {
                actions.cancel_rto = true;
                self.rto_deadline = None;
            } else {
                let deadline = now + self.rto_scaled();
                self.rto_deadline = Some(deadline);
                actions.rearm_rto = Some(deadline);
            }
        } else {
            // --- Duplicate ACK ---
            self.dupacks += 1;
            if self.ca_state == CaState::Open {
                self.ca_state = CaState::Disorder;
            }
            if self.dupacks == 3 && matches!(self.ca_state, CaState::Open | CaState::Disorder) {
                // Enter fast recovery.
                self.ca_state = CaState::Recovery;
                self.recovery_high = self.next_seq;
                self.mark_losses();
                let view = self.socket_view(now);
                self.cca.on_congestion_event(now, &view);
            } else if self.dupacks > 3 && self.ca_state == CaState::Recovery {
                // Later SACKs may expose more holes; packet conservation
                // happens naturally as each dup-ACK shrinks the pipe.
                self.mark_losses();
            }
        }
        actions
    }

    /// SACK-based loss marking (Linux SACK/FACK recovery): every unsacked
    /// packet below the highest SACKed sequence is a hole the receiver has
    /// proven lost (the emulated path never reorders). Marks all such holes
    /// and queues their retransmission. The scan floor makes repeated calls
    /// amortised O(n log n) over a connection.
    fn mark_losses(&mut self) {
        if self.highest_sacked <= self.loss_scan_floor {
            return;
        }
        let from = self.loss_scan_floor.max(self.snd_una);
        if from >= self.highest_sacked {
            return;
        }
        let newly: Vec<u64> = self
            .outstanding
            .range(from..self.highest_sacked)
            .filter(|(_, m)| !m.sacked && !m.lost)
            .map(|(&s, _)| s)
            .collect();
        for seq in newly {
            // The keys were just collected from this map and nothing was
            // removed in between, so the lookup cannot miss; stay panic-free
            // on the hot path regardless.
            let Some(meta) = self.outstanding.get_mut(&seq) else {
                continue;
            };
            meta.lost = true;
            self.n_lost += 1;
            self.lost_pkts_total += 1;
            self.lost_bytes_total += meta.bytes as u64;
            self.retransmit_queue.push_back(seq);
        }
        self.loss_scan_floor = self.highest_sacked;
    }

    /// Retransmission timeout fired at `now`. Returns new timer deadline.
    pub fn on_rto(&mut self, now: Nanos) -> Option<Nanos> {
        match self.rto_deadline {
            Some(d) if now >= d => {}
            _ => return self.rto_deadline, // stale timer event
        }
        if self.outstanding.is_empty() {
            self.rto_deadline = None;
            return None;
        }
        self.consecutive_rtos += 1;
        sage_obs::obs_counter!("transport.rto_fired").inc();
        sage_obs::record(
            sage_obs::Category::Transport,
            sage_obs::EventKind::Rto,
            now,
            self.span,
            self.id as u64,
            self.consecutive_rtos as u64,
        );
        if self.consecutive_rtos >= self.max_consecutive_rtos {
            // The path is presumed dead (e.g. a long blackout): abort the
            // connection and restart it cleanly rather than doubling the
            // timer forever against a black hole.
            self.abort_and_restart(now);
            return None;
        }
        self.ca_state = CaState::Loss;
        self.recovery_high = self.next_seq;
        self.dupacks = 0;
        self.rto_backoff = (self.rto_backoff + 1).min(5);
        // Go-back-N: every unsacked outstanding packet is presumed lost.
        self.retransmit_queue.clear();
        let mut newly_lost = 0u64;
        for (&seq, meta) in self.outstanding.iter_mut() {
            if !meta.sacked {
                if !meta.lost {
                    newly_lost += 1;
                    self.lost_bytes_total += meta.bytes as u64;
                }
                meta.lost = true;
                self.retransmit_queue.push_back(seq);
            }
        }
        self.n_lost = self.retransmit_queue.len();
        self.lost_pkts_total += newly_lost;
        let view = self.socket_view(now);
        self.cca.on_rto(now, &view);
        let deadline = now + self.rto_scaled();
        self.rto_deadline = Some(deadline);
        Some(deadline)
    }

    /// Abort a presumed-dead connection and restart it in place: everything
    /// still outstanding is written off as lost, the scoreboard and receiver
    /// reassembly state are discarded, the RTT estimator and CCA re-initialise
    /// and the flow resumes sending fresh data from `next_seq` (the sequence
    /// space is never reused, so old in-flight copies can only show up as
    /// harmless duplicates).
    fn abort_and_restart(&mut self, now: Nanos) {
        // Count only packets not already written off by go-back-N marking.
        let written_off = self
            .outstanding
            .values()
            .filter(|m| !m.sacked && !m.lost)
            .count() as u64;
        self.lost_pkts_total += written_off;
        self.lost_bytes_total += written_off * MSS as u64;
        self.outstanding.clear();
        self.retransmit_queue.clear();
        self.n_sacked = 0;
        self.n_lost = 0;
        self.dupacks = 0;
        self.snd_una = self.next_seq;
        self.highest_sacked = self.next_seq;
        self.loss_scan_floor = self.next_seq;
        self.recovery_high = self.next_seq;
        // Receiver side resynchronises to the restarted sequence stream.
        self.rcv_nxt = self.next_seq;
        self.ooo.clear();
        self.ca_state = CaState::Open;
        self.rto_backoff = 0;
        self.consecutive_rtos = 0;
        self.rto_deadline = None;
        self.rtt = RttEstimator::new();
        self.cca.init(now, MSS);
        self.restarts_total += 1;
        sage_obs::obs_counter!("transport.flow_restarts").inc();
        sage_obs::record(
            sage_obs::Category::Transport,
            sage_obs::EventKind::Restart,
            now,
            self.span,
            self.id as u64,
            self.restarts_total,
        );
    }

    fn rto_scaled(&self) -> Nanos {
        self.rtt.rto().saturating_mul(1 << self.rto_backoff.min(5))
    }

    /// Arm the RTO when the first packet of a burst goes out.
    pub fn ensure_rto(&mut self, now: Nanos) -> Option<Nanos> {
        if self.rto_deadline.is_none() && !self.outstanding.is_empty() {
            let d = now + self.rto_scaled();
            self.rto_deadline = Some(d);
            return Some(d);
        }
        None
    }

    /// Build the socket statistics snapshot.
    pub fn socket_view(&self, now: Nanos) -> SocketView {
        SocketView {
            now,
            mss: MSS,
            srtt: self.rtt.srtt(),
            rttvar: self.rtt.rttvar(),
            latest_rtt: self.rtt.latest(),
            prev_rtt: self.prev_rtt,
            min_rtt: self.rtt.min_rtt(),
            inflight_pkts: self.pipe_pkts() as f64,
            inflight_bytes: (self.pipe_pkts() as u64) * MSS as u64,
            delivery_rate_bps: self.rate.latest_bps(),
            prev_delivery_rate_bps: self.prev_rate_bps,
            max_delivery_rate_bps: self.rate.max_bps(),
            prev_max_delivery_rate_bps: self.rate.prev_max_bps(),
            ca_state: self.ca_state,
            delivered_bytes_total: self.rate.delivered_bytes(),
            sent_bytes_total: self.sent_bytes_total,
            lost_bytes_total: self.lost_bytes_total,
            lost_pkts_total: self.lost_pkts_total,
            cwnd_pkts: self.cwnd_pkts(),
            ssthresh_pkts: self.cca.ssthresh_pkts(),
        }
    }

    /// Reset per-tick receiver accumulators, returning (bytes, mean owd s).
    pub fn take_tick(&mut self) -> (u64, f64) {
        let bytes = self.tick_rcv_bytes;
        let owd = if self.tick_owd_count > 0 {
            self.tick_owd_sum / self.tick_owd_count as f64
        } else {
            0.0
        };
        self.tick_rcv_bytes = 0;
        self.tick_owd_sum = 0.0;
        self.tick_owd_count = 0;
        (bytes, owd)
    }

    /// Cumulative snd_una (for tests).
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Diagnostic dump of sender/receiver state (debugging and tests).
    pub fn debug_state(&self) -> String {
        let first: Vec<(u64, bool, bool)> = self
            .outstanding
            .iter()
            .take(5)
            .map(|(&s, m)| (s, m.sacked, m.lost))
            .collect();
        format!(
            "snd_una={} next_seq={} outstanding={} n_sacked={} n_lost={} rtxq={:?} rcv_nxt={} ooo={} first={:?} ca={:?} dupacks={}",
            self.snd_una,
            self.next_seq,
            self.outstanding.len(),
            self.n_sacked,
            self.n_lost,
            self.retransmit_queue,
            self.rcv_nxt,
            self.ooo.len(),
            first,
            self.ca_state,
            self.dupacks
        )
    }

    /// Highest sequence produced so far (for tests).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cc::{AckEvent, SocketView};
    use sage_netsim::time::MILLIS;

    /// A fixed-window CCA for exercising the flow machinery.
    struct FixedWindow {
        cwnd: f64,
        congestion_events: u32,
        rtos: u32,
    }
    impl CongestionControl for FixedWindow {
        fn name(&self) -> &'static str {
            "fixed"
        }
        fn on_ack(&mut self, _ack: &AckEvent, _s: &SocketView) {}
        fn on_congestion_event(&mut self, _now: Nanos, _s: &SocketView) {
            self.congestion_events += 1;
            self.cwnd = (self.cwnd / 2.0).max(2.0);
        }
        fn on_rto(&mut self, _now: Nanos, _s: &SocketView) {
            self.rtos += 1;
            self.cwnd = 2.0;
        }
        fn cwnd_pkts(&self) -> f64 {
            self.cwnd
        }
    }

    fn flow(cwnd: f64) -> Flow {
        let mut f = Flow::new(
            0,
            Box::new(FixedWindow {
                cwnd,
                congestion_events: 0,
                rtos: 0,
            }),
            0,
            None,
        );
        f.active = true;
        f
    }

    /// Deliver a data packet to the (co-located) receiver and feed the ACK
    /// right back, simulating an instant network.
    fn roundtrip(f: &mut Flow, pkt: Packet, now: Nanos) {
        let ack = f.on_data(now, pkt);
        f.on_ack(now, ack);
    }

    #[test]
    fn sends_up_to_window() {
        let mut f = flow(4.0);
        let mut sent = 0;
        while f.window_open() {
            f.make_packet(0);
            sent += 1;
        }
        assert_eq!(sent, 4);
        assert_eq!(f.pipe_pkts(), 4);
    }

    #[test]
    fn in_order_delivery_advances_snd_una() {
        let mut f = flow(10.0);
        let p0 = f.make_packet(0);
        let p1 = f.make_packet(0);
        roundtrip(&mut f, p0, 10 * MILLIS);
        assert_eq!(f.snd_una(), 1);
        roundtrip(&mut f, p1, 11 * MILLIS);
        assert_eq!(f.snd_una(), 2);
        assert_eq!(f.pipe_pkts(), 0);
        assert!(f.rtt.has_sample());
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit() {
        let mut f = flow(10.0);
        let packets: Vec<Packet> = (0..6).map(|_| f.make_packet(0)).collect();
        // Packet 0 lost; 1..=4 arrive -> dup ACKs.
        for (i, &p) in packets.iter().enumerate().skip(1).take(4) {
            let ack = f.on_data((i as u64) * MILLIS, p);
            assert_eq!(ack.ack_seq, 0, "cumulative ack stuck at hole");
            f.on_ack((i as u64) * MILLIS, ack);
        }
        assert_eq!(f.ca_state, CaState::Recovery);
        assert!(f.has_retransmit());
        assert_eq!(f.lost_pkts_total, 1);
        // Retransmission goes out and fills the hole.
        let rtx = f.make_packet(10 * MILLIS);
        assert_eq!(rtx.seq, 0);
        assert!(rtx.retransmit);
        let ack = f.on_data(12 * MILLIS, rtx);
        assert_eq!(ack.ack_seq, 5);
        f.on_ack(12 * MILLIS, ack);
        // Packet 5 is genuinely still in flight: the partial ACK must NOT
        // spuriously retransmit it (SACK evidence rule).
        assert_eq!(f.ca_state, CaState::Recovery);
        assert!(
            !f.has_retransmit(),
            "no spurious retransmit without SACK evidence"
        );
        let ack5 = f.on_data(13 * MILLIS, packets[5]);
        assert_eq!(ack5.ack_seq, 6);
        f.on_ack(13 * MILLIS, ack5);
        assert_eq!(
            f.ca_state,
            CaState::Open,
            "recovery exits once all pre-loss data acked"
        );
    }

    #[test]
    fn sack_accounting_shrinks_pipe() {
        let mut f = flow(10.0);
        let packets: Vec<Packet> = (0..5).map(|_| f.make_packet(0)).collect();
        assert_eq!(f.pipe_pkts(), 5);
        // Packet 0 lost; others arrive.
        for &p in &packets[1..] {
            let ack = f.on_data(MILLIS, p);
            f.on_ack(MILLIS, ack);
        }
        // 4 sacked, 1 marked lost after dup-acks.
        assert_eq!(f.pipe_pkts(), 0);
    }

    #[test]
    fn rto_marks_all_outstanding_lost() {
        let mut f = flow(8.0);
        for _ in 0..8 {
            f.make_packet(0);
        }
        f.ensure_rto(0);
        let deadline = f.rto_deadline.unwrap();
        let next = f.on_rto(deadline);
        assert!(next.is_some());
        assert_eq!(f.ca_state, CaState::Loss);
        assert_eq!(f.pipe_pkts(), 0);
        assert_eq!(f.lost_pkts_total, 8);
        // All 8 packets queued for retransmission, oldest first.
        let p = f.make_packet(deadline + 1);
        assert_eq!(p.seq, 0);
        assert!(p.retransmit);
    }

    #[test]
    fn stale_rto_is_ignored() {
        let mut f = flow(4.0);
        f.make_packet(0);
        f.ensure_rto(0);
        // Fire far before the deadline: no state change.
        f.on_rto(1);
        assert_eq!(f.ca_state, CaState::Open);
        assert_eq!(f.lost_pkts_total, 0);
    }

    #[test]
    fn karns_rule_skips_retransmit_rtt() {
        let mut f = flow(4.0);
        let p = f.make_packet(0);
        // Simulate loss + RTO + retransmit.
        f.ensure_rto(0);
        let d = f.rto_deadline.unwrap();
        f.on_rto(d);
        let rtx = f.make_packet(d);
        assert!(rtx.retransmit);
        let before = f.rtt.has_sample();
        let ack = f.on_data(d + 5 * MILLIS, rtx);
        f.on_ack(d + 10 * MILLIS, ack);
        assert_eq!(f.rtt.has_sample(), before, "no RTT sample from retransmit");
        let _ = p;
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut f = flow(10.0);
        let packets: Vec<Packet> = (0..3).map(|_| f.make_packet(0)).collect();
        let a2 = f.on_data(MILLIS, packets[2]);
        assert_eq!(a2.ack_seq, 0);
        let a0 = f.on_data(2 * MILLIS, packets[0]);
        assert_eq!(a0.ack_seq, 1);
        let a1 = f.on_data(3 * MILLIS, packets[1]);
        assert_eq!(a1.ack_seq, 3, "hole filled: cumulative ack jumps");
    }

    #[test]
    fn duplicate_data_not_double_counted() {
        let mut f = flow(10.0);
        let p = f.make_packet(0);
        f.on_data(MILLIS, p);
        let bytes_after_first = f.rcv_bytes_total;
        f.on_data(2 * MILLIS, p);
        assert_eq!(f.rcv_bytes_total, bytes_after_first);
    }

    #[test]
    fn rto_backoff_doubles_caps_and_resets() {
        let mut f = flow(4.0);
        f.max_consecutive_rtos = 100; // keep the abort path out of this test
        f.make_packet(0);
        f.ensure_rto(0);
        let base = f.rto_scaled();
        assert!(base > 0);
        let mut now = 0;
        let mut prev = 0;
        for i in 1..=8u32 {
            now = f.rto_deadline.unwrap();
            f.on_rto(now);
            let cur = f.rto_scaled();
            if i <= 5 {
                assert_eq!(cur, base << i, "backoff {i} must double");
                assert!(cur > prev, "backoff must grow monotonically");
            } else {
                assert_eq!(cur, base << 5, "backoff capped at 32x");
            }
            prev = cur;
        }
        // Fresh cumulative ACK resets the backoff entirely.
        let rtx = f.make_packet(now);
        assert!(rtx.retransmit);
        let ack = f.on_data(now + MILLIS, rtx);
        f.on_ack(now + 2 * MILLIS, ack);
        assert_eq!(f.rto_scaled(), base, "forward progress must reset backoff");
    }

    #[test]
    fn repeated_rtos_abort_and_restart_flow() {
        let mut f = flow(4.0);
        f.max_consecutive_rtos = 3;
        for _ in 0..4 {
            f.make_packet(0);
        }
        f.ensure_rto(0);
        // Two RTOs back off; the third hits the cap and restarts the flow.
        for _ in 0..2 {
            let d = f.rto_deadline.unwrap();
            assert!(f.on_rto(d).is_some());
        }
        assert_eq!(f.restarts_total, 0);
        let d = f.rto_deadline.unwrap();
        assert!(f.on_rto(d).is_none(), "restart cancels the timer");
        assert_eq!(f.restarts_total, 1);
        assert_eq!(f.pipe_pkts(), 0);
        assert_eq!(
            f.snd_una(),
            f.next_seq(),
            "written off everything outstanding"
        );
        assert_eq!(f.lost_pkts_total, 4);
        assert_eq!(f.ca_state, CaState::Open);
        // The flow keeps working after the restart: new data flows end to end.
        let p = f.make_packet(SECONDS);
        assert!(!p.retransmit, "restart discards the retransmit queue");
        let ack = f.on_data(SECONDS + MILLIS, p);
        f.on_ack(SECONDS + 2 * MILLIS, ack);
        assert_eq!(f.snd_una(), f.next_seq());
        assert_eq!(f.pipe_pkts(), 0);
    }

    #[test]
    fn tick_accumulators_reset() {
        let mut f = flow(10.0);
        let p = f.make_packet(0);
        f.on_data(5 * MILLIS, p);
        let (bytes, owd) = f.take_tick();
        assert_eq!(bytes, MSS as u64);
        assert!(owd > 0.0);
        let (bytes2, owd2) = f.take_tick();
        assert_eq!(bytes2, 0);
        assert_eq!(owd2, 0.0);
    }
}
