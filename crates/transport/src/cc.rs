//! The congestion-control hook interface ("TCP Pure" API).
//!
//! A CCA owns its congestion window (in packets, fractional allowed) and
//! optionally a pacing rate; the transport owns sequencing, loss detection and
//! retransmission, and notifies the CCA through these callbacks — mirroring
//! the Linux `tcp_congestion_ops` contract the paper's Policy Collector
//! records through socket APIs.

use sage_netsim::time::Nanos;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Socket congestion-avoidance state, as exposed to the GR unit
/// (`ca_state` row of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaState {
    /// Normal operation.
    Open,
    /// Duplicate ACKs seen, not yet in recovery.
    Disorder,
    /// Fast recovery after triple-dup-ACK.
    Recovery,
    /// RTO-triggered loss recovery.
    Loss,
}

impl CaState {
    /// Numeric encoding used in the state vector (matches Linux ordering).
    pub fn as_f64(self) -> f64 {
        match self {
            CaState::Open => 0.0,
            CaState::Disorder => 1.0,
            CaState::Recovery => 3.0,
            CaState::Loss => 4.0,
        }
    }
}

/// Snapshot of socket statistics handed to CCAs and the GR unit.
/// All rates are bits/second, all times seconds unless stated otherwise.
#[derive(Debug, Clone, Copy)]
pub struct SocketView {
    pub now: Nanos,
    pub mss: u32,
    /// Smoothed RTT (s); 0 before the first sample.
    pub srtt: f64,
    /// RTT variance (s).
    pub rttvar: f64,
    /// Most recent RTT sample (s).
    pub latest_rtt: f64,
    /// RTT sample preceding the latest (for `rtt_rate`).
    pub prev_rtt: f64,
    /// Windowed minimum RTT (s).
    pub min_rtt: f64,
    /// Packets in flight.
    pub inflight_pkts: f64,
    /// Bytes in flight.
    pub inflight_bytes: u64,
    /// Latest delivery-rate sample (bit/s).
    pub delivery_rate_bps: f64,
    /// Delivery-rate sample preceding the latest (for `dr_ratio`).
    pub prev_delivery_rate_bps: f64,
    /// Windowed maximum delivery rate (bit/s).
    pub max_delivery_rate_bps: f64,
    /// Windowed max before the latest sample (for `dr_max_ratio`).
    pub prev_max_delivery_rate_bps: f64,
    /// Congestion-avoidance state.
    pub ca_state: CaState,
    /// Cumulative counters since flow start.
    pub delivered_bytes_total: u64,
    pub sent_bytes_total: u64,
    pub lost_bytes_total: u64,
    pub lost_pkts_total: u64,
    /// Congestion window currently applied by the sender (packets).
    pub cwnd_pkts: f64,
    /// Slow-start threshold (packets); `f64::INFINITY` when unset.
    pub ssthresh_pkts: f64,
}

impl SocketView {
    /// Bandwidth-delay product estimate in packets, from windowed max rate
    /// and min RTT (as BBR computes it).
    pub fn bdp_pkts(&self) -> f64 {
        if self.min_rtt <= 0.0 || self.mss == 0 {
            return 0.0;
        }
        self.max_delivery_rate_bps * self.min_rtt / 8.0 / self.mss as f64
    }
}

/// Details of a cumulative-ACK arrival.
#[derive(Debug, Clone, Copy)]
pub struct AckEvent {
    pub now: Nanos,
    /// Packets newly cumulatively acknowledged by this ACK.
    pub newly_acked_pkts: u64,
    /// Bytes newly acknowledged.
    pub newly_acked_bytes: u64,
    /// RTT sample carried by this ACK, seconds (None under Karn's rule).
    pub rtt_sample: Option<f64>,
    /// True if this ACK ended fast recovery.
    pub exited_recovery: bool,
}

/// A pluggable congestion-control algorithm.
///
/// Implementations must be deterministic given their inputs (any randomness
/// must come from a seeded generator owned by the implementation).
pub trait CongestionControl: Send {
    /// Scheme name as used in league tables (e.g. "cubic").
    fn name(&self) -> &'static str;

    /// Called once when the flow starts.
    fn init(&mut self, _now: Nanos, _mss: u32) {}

    /// Called for every ACK that advances `snd_una`.
    fn on_ack(&mut self, ack: &AckEvent, sock: &SocketView);

    /// Called when entering fast recovery (triple dup-ACK). The CCA should
    /// reduce its window (multiplicative decrease).
    fn on_congestion_event(&mut self, now: Nanos, sock: &SocketView);

    /// Called on retransmission timeout. The CCA should collapse its window.
    fn on_rto(&mut self, now: Nanos, sock: &SocketView);

    /// Called when fast recovery completes successfully.
    fn on_exit_recovery(&mut self, _now: Nanos, _sock: &SocketView) {}

    /// Called every monitor tick (10 ms by default) — used by model-based
    /// schemes (BBR) and by learned policies (Sage) that act on wall-clock
    /// periods rather than per-ACK.
    fn on_tick(&mut self, _now: Nanos, _sock: &SocketView) {}

    /// Current congestion window in packets (the sender clamps to
    /// [`crate::MIN_CWND`], so implementations may return smaller values).
    fn cwnd_pkts(&self) -> f64;

    /// Current slow-start threshold in packets (for the state vector).
    fn ssthresh_pkts(&self) -> f64 {
        f64::INFINITY
    }

    /// Pacing rate in bits/s; `None` means pure window-based (ACK-clocked)
    /// transmission.
    fn pacing_bps(&self) -> Option<f64> {
        None
    }
}

/// A congestion-window cell shared between the transport and an external
/// controller (the batched serving runtime). Stores the f64 bit pattern in
/// an `AtomicU64` because [`CongestionControl`] implementations must be
/// `Send`; ordering is `Relaxed` — the simulation is single-threaded per
/// event, the atomic is only for type-level soundness.
#[derive(Debug, Clone)]
pub struct SharedCwnd(Arc<AtomicU64>);

impl SharedCwnd {
    pub fn new(initial: f64) -> Self {
        SharedCwnd(Arc::new(AtomicU64::new(initial.to_bits())))
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }
}

/// A congestion controller whose window is decided out-of-band: the serving
/// runtime (`crates/serve`) writes actions into the [`SharedCwnd`] cell on
/// its batch clock, while the transport keeps local safety behaviour (RTO
/// collapse) — mirroring how `SagePolicy` halves on timeout.
pub struct RemoteCwnd {
    cwnd: SharedCwnd,
    name: &'static str,
}

impl RemoteCwnd {
    /// Build the controller plus the cell handle the remote side writes.
    pub fn new(name: &'static str) -> (Self, SharedCwnd) {
        let cell = SharedCwnd::new(crate::INIT_CWND);
        (
            RemoteCwnd {
                cwnd: cell.clone(),
                name,
            },
            cell,
        )
    }
}

impl CongestionControl for RemoteCwnd {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_ack(&mut self, _ack: &AckEvent, _sock: &SocketView) {
        // The remote policy acts on its own clock, not per-ACK.
    }

    fn on_congestion_event(&mut self, _now: Nanos, _sock: &SocketView) {
        // Loss reaches the remote policy through the observed state.
    }

    fn on_rto(&mut self, _now: Nanos, _sock: &SocketView) {
        self.cwnd.set((self.cwnd.get() * 0.5).max(crate::MIN_CWND));
    }

    fn cwnd_pkts(&self) -> f64 {
        self.cwnd.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_cwnd_round_trips_values() {
        let (mut cca, cell) = RemoteCwnd::new("served");
        assert_eq!(cca.cwnd_pkts(), crate::INIT_CWND);
        cell.set(123.75);
        assert_eq!(cca.cwnd_pkts(), 123.75);
        let view = dummy_view();
        cca.on_rto(0, &view);
        assert_eq!(cell.get(), 61.875);
        cell.set(crate::MIN_CWND);
        cca.on_rto(0, &view);
        assert_eq!(cell.get(), crate::MIN_CWND, "RTO clamps at MIN_CWND");
    }

    #[test]
    fn ca_state_encoding_matches_linux() {
        assert_eq!(CaState::Open.as_f64(), 0.0);
        assert_eq!(CaState::Disorder.as_f64(), 1.0);
        assert_eq!(CaState::Recovery.as_f64(), 3.0);
        assert_eq!(CaState::Loss.as_f64(), 4.0);
    }

    #[test]
    fn bdp_pkts_computation() {
        let mut v = dummy_view();
        v.max_delivery_rate_bps = 48e6;
        v.min_rtt = 0.040;
        v.mss = 1500;
        // 48 Mbps * 40 ms / 8 / 1500 = 160 packets.
        assert!((v.bdp_pkts() - 160.0).abs() < 1e-9);
    }

    #[test]
    fn bdp_pkts_zero_without_rtt() {
        let v = dummy_view();
        assert_eq!(v.bdp_pkts(), 0.0);
    }

    pub(crate) fn dummy_view() -> SocketView {
        SocketView {
            now: 0,
            mss: 1500,
            srtt: 0.0,
            rttvar: 0.0,
            latest_rtt: 0.0,
            prev_rtt: 0.0,
            min_rtt: 0.0,
            inflight_pkts: 0.0,
            inflight_bytes: 0,
            delivery_rate_bps: 0.0,
            prev_delivery_rate_bps: 0.0,
            max_delivery_rate_bps: 0.0,
            prev_max_delivery_rate_bps: 0.0,
            ca_state: CaState::Open,
            delivered_bytes_total: 0,
            sent_bytes_total: 0,
            lost_bytes_total: 0,
            lost_pkts_total: 0,
            cwnd_pkts: 10.0,
            ssthresh_pkts: f64::INFINITY,
        }
    }
}
