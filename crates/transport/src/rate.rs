//! Delivery-rate sampling in the style of BBR / `tcp_rate.c`.
//!
//! Every transmitted packet snapshots `(delivered_bytes, time)`; when the
//! packet is ACKed, the rate sample is the delivered delta over the elapsed
//! interval. This yields per-ACK bandwidth samples robust to ACK compression.

use sage_netsim::time::{Nanos, SECONDS};
use std::collections::VecDeque;

/// Per-packet snapshot captured at transmission time.
#[derive(Debug, Clone, Copy)]
pub struct RateSnapshot {
    pub delivered_bytes: u64,
    pub at: Nanos,
}

/// Sender-side delivery rate tracker.
#[derive(Debug, Clone)]
pub struct RateSampler {
    delivered_bytes: u64,
    delivered_at: Nanos,
    latest_bps: f64,
    /// Monotonic deque of (timestamp, bps): decreasing bps front-to-back, so
    /// the front is always the windowed maximum. O(1) amortised per sample.
    max_window: VecDeque<(Nanos, f64)>,
    max_window_len: Nanos,
    prev_max: f64,
}

impl Default for RateSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl RateSampler {
    pub fn new() -> Self {
        RateSampler {
            delivered_bytes: 0,
            delivered_at: 0,
            latest_bps: 0.0,
            max_window: VecDeque::new(),
            max_window_len: 10 * SECONDS,
            prev_max: 0.0,
        }
    }

    /// Snapshot to attach to a packet being transmitted now.
    pub fn snapshot(&self, now: Nanos) -> RateSnapshot {
        RateSnapshot {
            delivered_bytes: self.delivered_bytes,
            at: if self.delivered_at == 0 {
                now
            } else {
                self.delivered_at
            },
        }
    }

    /// Record `bytes` newly cumulatively ACKed at `now`, producing a rate
    /// sample against the snapshot taken when the ACKed packet was sent.
    pub fn on_delivered(&mut self, now: Nanos, bytes: u64, snap: RateSnapshot) -> f64 {
        self.delivered_bytes += bytes;
        self.delivered_at = now;
        let interval = now.saturating_sub(snap.at);
        if interval > 0 {
            let delta = self.delivered_bytes.saturating_sub(snap.delivered_bytes);
            let bps = delta as f64 * 8.0 / (interval as f64 / SECONDS as f64);
            self.latest_bps = bps;
            self.prev_max = self.max_bps();
            while matches!(self.max_window.back(), Some(&(_, r)) if r <= bps) {
                self.max_window.pop_back();
            }
            self.max_window.push_back((now, bps));
            let cutoff = now.saturating_sub(self.max_window_len);
            while matches!(self.max_window.front(), Some(&(t, _)) if t < cutoff) {
                self.max_window.pop_front();
            }
        }
        self.latest_bps
    }

    /// Cumulative delivered bytes.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Latest instantaneous rate sample, bits/s.
    pub fn latest_bps(&self) -> f64 {
        self.latest_bps
    }

    /// Windowed maximum delivery rate, bits/s.
    pub fn max_bps(&self) -> f64 {
        self.max_window.front().map(|&(_, r)| r).unwrap_or(0.0)
    }

    /// Maximum before the latest sample was folded in (for `dr_max_ratio`).
    pub fn prev_max_bps(&self) -> f64 {
        self.prev_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sage_netsim::time::MILLIS;

    #[test]
    fn steady_stream_measures_line_rate() {
        let mut s = RateSampler::new();
        // 1500 B every 1 ms = 12 Mbps. Snapshot then deliver one interval later.
        let mut snaps = Vec::new();
        for i in 0..20u64 {
            snaps.push((i, s.snapshot(i * MILLIS)));
            if i >= 2 {
                let (_, snap) = snaps[(i - 2) as usize];
                s.on_delivered(i * MILLIS, 1500, snap);
            }
        }
        assert!(
            (s.latest_bps() - 12e6).abs() / 12e6 < 0.05,
            "rate {}",
            s.latest_bps()
        );
    }

    #[test]
    fn max_tracks_peak() {
        let mut s = RateSampler::new();
        let snap0 = s.snapshot(0);
        s.on_delivered(MILLIS, 15_000, snap0); // 120 Mbps burst
        let snap1 = s.snapshot(MILLIS);
        s.on_delivered(11 * MILLIS, 1_500, snap1); // slow
        assert!(s.max_bps() > 100e6);
        assert!(s.latest_bps() < 10e6);
    }

    #[test]
    fn zero_interval_is_ignored() {
        let mut s = RateSampler::new();
        let snap = s.snapshot(5);
        s.on_delivered(5, 1500, snap);
        assert_eq!(s.latest_bps(), 0.0);
        assert_eq!(s.delivered_bytes(), 1500);
    }
}
