//! RTT estimation per RFC 6298 (Jacobson/Karels) plus a windowed minimum.

use sage_netsim::time::{Nanos, MILLIS, SECONDS};
use std::collections::VecDeque;

/// Smoothed RTT state. All durations are in seconds (f64) except deadlines.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    latest: f64,
    /// Monotonic deque of (timestamp, rtt): increasing rtt front-to-back, so
    /// the front is always the windowed minimum. O(1) amortised per sample.
    min_window: VecDeque<(Nanos, f64)>,
    min_window_len: Nanos,
}

impl Default for RttEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl RttEstimator {
    pub fn new() -> Self {
        RttEstimator {
            srtt: None,
            rttvar: 0.0,
            latest: 0.0,
            min_window: VecDeque::new(),
            min_window_len: 10 * SECONDS,
        }
    }

    /// Feed one RTT sample (seconds) taken at `now`.
    pub fn on_sample(&mut self, now: Nanos, rtt: f64) {
        self.latest = rtt;
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(srtt) => {
                // RFC 6298: beta = 1/4, alpha = 1/8.
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - rtt).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * rtt);
            }
        }
        // Monotonic deque maintenance: drop dominated entries from the back,
        // expired entries from the front.
        while matches!(self.min_window.back(), Some(&(_, r)) if r >= rtt) {
            self.min_window.pop_back();
        }
        self.min_window.push_back((now, rtt));
        let cutoff = now.saturating_sub(self.min_window_len);
        while matches!(self.min_window.front(), Some(&(t, _)) if t < cutoff) {
            self.min_window.pop_front();
        }
    }

    /// Smoothed RTT in seconds (0 until the first sample).
    pub fn srtt(&self) -> f64 {
        self.srtt.unwrap_or(0.0)
    }

    /// RTT variance estimate in seconds.
    pub fn rttvar(&self) -> f64 {
        self.rttvar
    }

    /// Most recent sample in seconds.
    pub fn latest(&self) -> f64 {
        self.latest
    }

    /// Windowed minimum RTT in seconds (propagation-delay estimate);
    /// falls back to srtt, then 0.
    pub fn min_rtt(&self) -> f64 {
        match self.min_window.front() {
            Some(&(_, r)) => r,
            None => self.srtt(),
        }
    }

    /// Retransmission timeout in nanoseconds (RFC 6298 with a 200 ms floor,
    /// matching modern Linux rather than the RFC's 1 s).
    pub fn rto(&self) -> Nanos {
        match self.srtt {
            None => SECONDS, // conservative initial RTO
            Some(srtt) => {
                let rto = srtt + (4.0 * self.rttvar).max(0.001);
                ((rto * SECONDS as f64) as Nanos).max(200 * MILLIS)
            }
        }
    }

    pub fn has_sample(&self) -> bool {
        self.srtt.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_sample_initialises() {
        let mut e = RttEstimator::new();
        e.on_sample(0, 0.1);
        assert!((e.srtt() - 0.1).abs() < 1e-12);
        assert!((e.rttvar() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn srtt_converges() {
        let mut e = RttEstimator::new();
        for i in 0..200 {
            e.on_sample(i * MILLIS, 0.05);
        }
        assert!((e.srtt() - 0.05).abs() < 1e-9);
        assert!(e.rttvar() < 1e-3);
    }

    #[test]
    fn min_rtt_tracks_window_min() {
        let mut e = RttEstimator::new();
        e.on_sample(0, 0.08);
        e.on_sample(MILLIS, 0.03);
        e.on_sample(2 * MILLIS, 0.2);
        assert!((e.min_rtt() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn min_rtt_expires_old_samples() {
        let mut e = RttEstimator::new();
        e.on_sample(0, 0.01);
        e.on_sample(20 * SECONDS, 0.05);
        assert!((e.min_rtt() - 0.05).abs() < 1e-12, "old min should expire");
    }

    #[test]
    fn rto_has_floor() {
        let mut e = RttEstimator::new();
        for i in 0..100 {
            e.on_sample(i * MILLIS, 0.001);
        }
        assert_eq!(e.rto(), 200 * MILLIS);
    }

    #[test]
    fn initial_rto_is_one_second() {
        let e = RttEstimator::new();
        assert_eq!(e.rto(), SECONDS);
    }
}
