//! A TCP-like reliable transport with a pluggable congestion-control trait —
//! the role the paper's *TCP Pure* kernel module plays.
//!
//! The paper treats every congestion-control algorithm (CCA) as a black box
//! behind kernel socket APIs: the CCA observes ACK-clocked signals and sets a
//! congestion window; the kernel handles sequencing, loss detection, RTT
//! estimation and retransmission. This crate reproduces that separation:
//!
//! * [`cc::CongestionControl`] — the CCA hook interface (kernel-style
//!   callbacks: ACKs, congestion events, RTO, periodic ticks).
//! * [`cc::SocketView`] — the statistics snapshot equivalent to
//!   `tcp_info`/socket options, consumed both by CCAs and by the General
//!   Representation unit in `sage-gr`.
//! * [`flow`] — per-flow sender/receiver machinery: cumulative ACKs with
//!   SACK-equivalent accounting, dup-ACK fast retransmit, NewReno-style
//!   partial-ACK retransmission, RFC 6298 RTO, Karn's rule, BBR-style
//!   delivery-rate sampling.
//! * [`sim`] — the discrete-event simulation binding flows to a
//!   `sage-netsim` bottleneck path.

pub mod cc;
pub mod flow;
pub mod rate;
pub mod rtt;
pub mod sim;

pub use cc::{AckEvent, CaState, CongestionControl, RemoteCwnd, SharedCwnd, SocketView};
pub use flow::Flow;
pub use sim::{
    BatchCc, BatchObs, FlowConfig, FlowStats, HopCounters, SimConfig, Simulation, TickRecord,
};

/// Default maximum segment size used throughout the reproduction (bytes on
/// the wire; we do not model header overhead separately).
pub const MSS: u32 = 1500;

/// Initial congestion window in packets (IW10, RFC 6928).
pub const INIT_CWND: f64 = 10.0;

/// Minimum congestion window in packets.
pub const MIN_CWND: f64 = 2.0;
