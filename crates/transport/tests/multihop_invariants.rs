//! Invariants of the multi-bottleneck path: per-hop packet conservation
//! under the full fault grid, and monotone monitor ticks across hops.

use sage_netsim::faults::{FaultPlan, FlapPlan, GilbertElliott};
use sage_netsim::link::LinkModel;
use sage_netsim::time::{from_secs, Nanos, MILLIS};
use sage_netsim::topology::{HopSpec, Topology};
use sage_transport::sim::{Monitor, NullMonitor, TickRecord};
use sage_transport::{AckEvent, CongestionControl, FlowConfig, SimConfig, Simulation, SocketView};
use sage_util::{forall, PropConfig, Rng};

/// A minimal AIMD controller: enough dynamics to stress the queues without
/// pulling the heuristics crate into a circular dev-dependency.
struct MiniAimd {
    cwnd: f64,
}

impl CongestionControl for MiniAimd {
    fn name(&self) -> &'static str {
        "mini-aimd"
    }
    fn on_ack(&mut self, _a: &AckEvent, _s: &SocketView) {
        self.cwnd += 1.0 / self.cwnd.max(1.0);
    }
    fn on_congestion_event(&mut self, _n: Nanos, _s: &SocketView) {
        self.cwnd = (self.cwnd / 2.0).max(2.0);
    }
    fn on_rto(&mut self, _n: Nanos, _s: &SocketView) {
        self.cwnd = 2.0;
    }
    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }
}

/// A randomly generated fault plan spanning every mechanism the injector
/// implements (each independently present or absent).
fn random_plan(rng: &mut Rng, secs: f64) -> FaultPlan {
    let mut plan = FaultPlan::none();
    if rng.chance(0.5) {
        plan.burst_loss = Some(GilbertElliott {
            p_enter_bad: rng.range(0.0005, 0.01),
            p_leave_bad: rng.range(0.05, 0.3),
            loss_good: 0.0,
            loss_bad: rng.range(0.2, 0.9),
        });
    }
    if rng.chance(0.3) {
        plan.corrupt_prob = rng.range(0.0, 0.01);
    }
    if rng.chance(0.4) {
        plan.reorder_prob = rng.range(0.0, 0.03);
        plan.reorder_delay_min = 2 * MILLIS;
        plan.reorder_delay_max = 12 * MILLIS;
    }
    if rng.chance(0.3) {
        plan.duplicate_prob = rng.range(0.0, 0.02);
    }
    if rng.chance(0.3) {
        let start = rng.range(0.2, 0.6) * secs;
        plan.blackouts = vec![(from_secs(start), from_secs(start + rng.range(0.1, 0.5)))];
    }
    if rng.chance(0.3) {
        plan.flaps = Some(FlapPlan {
            up_mean_s: rng.range(0.5, 2.0),
            down_mean_s: rng.range(0.02, 0.15),
        });
    }
    if rng.chance(0.4) {
        plan.jitter_spike_prob = rng.range(0.0, 0.02);
        plan.jitter_spike_max = (rng.range(5.0, 30.0) * MILLIS as f64) as Nanos;
    }
    if rng.chance(0.3) {
        plan.ack_compression = (rng.range(0.5, 3.0) * MILLIS as f64) as Nanos;
    }
    plan
}

fn chain_sim(rng: &mut Rng, secs: f64) -> Simulation {
    let bw = rng.range(12.0, 48.0);
    let rtt_ms = rng.range(15.0, 60.0);
    let bdp = (bw * 1e6 / 8.0 * rtt_ms / 1e3) as u64;
    let n_extra = 1 + rng.below(2); // 1 or 2 downstream hops
    let mut topology = Topology::single();
    for k in 1..=n_extra {
        let ratio = rng.range(0.6, 1.2);
        let mut hop = HopSpec::constant(bw * ratio.powi(k as i32), bdp.max(30_000), 2.0);
        hop.faults = random_plan(rng, secs);
        topology.extra_hops.push(hop);
    }
    let mut cfg = SimConfig::new(
        LinkModel::Constant { mbps: bw },
        bdp.max(30_000),
        rtt_ms,
        from_secs(secs),
    )
    .with_topology(topology);
    cfg.seed = rng.next_u64();
    cfg.faults = random_plan(rng, secs);
    let flows = vec![
        FlowConfig::starting_at(Box::new(MiniAimd { cwnd: 10.0 }), 0),
        FlowConfig::starting_at(Box::new(MiniAimd { cwnd: 10.0 }), 50 * MILLIS),
    ];
    Simulation::new(cfg, flows)
}

/// Conservation: at the end of any run, every hop must account for each
/// packet it accepted — delivered, dropped, still buffered, or in service.
/// Holds regardless of which fault mechanisms fired on or between hops.
#[test]
fn per_hop_conservation_under_fault_grid() {
    forall(
        "per-hop conservation",
        PropConfig::new(25, 0xC0_45E4),
        |rng| {
            let secs = 2.0;
            let mut sim = chain_sim(rng, secs);
            let stats = sim.run(&mut NullMonitor);
            for (h, c) in sim.hop_counters().iter().enumerate() {
                let accounted = c.dropped
                    + c.delivered
                    + c.backlog_packets as u64
                    + c.in_service_packets as u64;
                if c.enqueued != accounted {
                    return Err(format!(
                        "hop {h} leaks packets: enqueued {e} != accounted {accounted} ({c:?})",
                        e = c.enqueued
                    ));
                }
            }
            // The chain may be hostile, but it must never deadlock the
            // simulation: both flows ran to completion (stats exist).
            if stats.len() != 2 {
                return Err(format!("expected 2 flow stats, got {}", stats.len()));
            }
            Ok(())
        },
    );
}

struct TickOrder {
    last: Vec<Nanos>,
    violations: usize,
    ticks: usize,
}

impl Monitor for TickOrder {
    fn on_tick(&mut self, flow_idx: usize, _view: &SocketView, tick: &TickRecord) {
        if flow_idx >= self.last.len() {
            self.last.resize(flow_idx + 1, 0);
        }
        if tick.now < self.last[flow_idx] {
            self.violations += 1;
        }
        self.last[flow_idx] = tick.now;
        self.ticks += 1;
    }
}

/// Monitor ticks must stay monotone per flow no matter how many hops the
/// path has or how its per-hop fault processes reorder and delay packets.
#[test]
fn monotone_ticks_across_hops() {
    forall(
        "monotone ticks across hops",
        PropConfig::new(15, 0x71C_04D3),
        |rng| {
            let mut sim = chain_sim(rng, 2.0);
            let mut mon = TickOrder {
                last: Vec::new(),
                violations: 0,
                ticks: 0,
            };
            sim.run(&mut mon);
            if mon.violations > 0 {
                return Err(format!("{} non-monotone ticks", mon.violations));
            }
            if mon.ticks == 0 {
                return Err("no monitor ticks at all".into());
            }
            Ok(())
        },
    );
}
