//! Property-based conservation and monotonicity checks, driven by the
//! `sage_util::forall` harness over random seeds and channel parameters.
//!
//! Two levels: (1) a bare `Flow` drained through a randomized hostile
//! channel must account for every sequence number it produced — cumulatively
//! ACKed or written off to loss/abort, never leaked; (2) a full `Simulation`
//! under randomized PR1 fault plans must keep its monitor-tick timestamps
//! strictly monotone per flow, survive, and keep loss accounting bounded by
//! actual transmissions.

use sage_netsim::faults::{FaultPlan, FlapPlan, GilbertElliott};
use sage_netsim::link::LinkModel;
use sage_netsim::packet::Packet;
use sage_netsim::time::{from_secs, Nanos, MILLIS};
use sage_transport::sim::{Monitor, TickRecord};
use sage_transport::{
    AckEvent, CongestionControl, Flow, FlowConfig, SimConfig, Simulation, SocketView,
};
use sage_util::prop::ensure;
use sage_util::{forall, PropConfig, Rng};

struct FixedWindow(f64);
impl CongestionControl for FixedWindow {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn on_ack(&mut self, _a: &AckEvent, _s: &SocketView) {}
    fn on_congestion_event(&mut self, _n: Nanos, _s: &SocketView) {}
    fn on_rto(&mut self, _n: Nanos, _s: &SocketView) {}
    fn cwnd_pkts(&self) -> f64 {
        self.0
    }
}

/// Level 1: every data byte the sender produced is eventually ACKed or
/// accounted to loss/abort, for random windows, drop rates, duplication
/// rates and delay spreads.
#[test]
fn prop_flow_drain_conserves_sequence_space() {
    forall(
        "flow drain conservation",
        PropConfig::new(20, 0xF10D),
        |rng| {
            let window = 2.0 + rng.below(14) as f64;
            let data_drop = rng.range(0.0, 0.20);
            let ack_drop = rng.range(0.0, 0.10);
            let dup_prob = rng.range(0.0, 0.05);
            let max_delay_ms = 5.0 + rng.range(0.0, 45.0);

            let mut f = Flow::new(0, Box::new(FixedWindow(window)), 0, None);
            f.active = true;
            f.max_consecutive_rtos = 4; // exercise the abort path too

            let mut channel: Vec<(Nanos, Packet)> = Vec::new();
            let mut now: Nanos = 0;
            let send_phase = 2000;
            let mut iters = 0;
            loop {
                iters += 1;
                ensure(iters < 60_000, || {
                    format!("drain failed to converge: {}", f.debug_state())
                })?;
                now += MILLIS;
                let sending = iters < send_phase;
                while (sending && f.window_open()) || (f.has_retransmit() && f.pipe_pkts() == 0) {
                    let pkt = f.make_packet(now);
                    f.ensure_rto(now);
                    if rng.uniform() < data_drop {
                        continue;
                    }
                    let delay =
                        5 * MILLIS + (rng.uniform() * max_delay_ms * MILLIS as f64) as Nanos;
                    channel.push((now + delay, pkt));
                    if rng.uniform() < dup_prob {
                        channel.push((now + delay * 2, pkt));
                    }
                }
                channel.sort_by_key(|&(t, _)| t);
                let due: Vec<Packet> = channel
                    .iter()
                    .filter(|&&(t, _)| t <= now)
                    .map(|&(_, p)| p)
                    .collect();
                channel.retain(|&(t, _)| t > now);
                for pkt in due {
                    let ack = f.on_data(now, pkt);
                    if rng.uniform() >= ack_drop {
                        f.on_ack(now, ack);
                    }
                }
                if let Some(d) = f.rto_deadline {
                    if now >= d {
                        f.on_rto(now);
                    }
                }
                if !sending && f.pipe_pkts() == 0 && !f.has_retransmit() && channel.is_empty() {
                    break;
                }
            }
            ensure(f.snd_una() == f.next_seq(), || {
                format!(
                    "unaccounted sequence numbers (window {window}, drop {data_drop:.3}): {}",
                    f.debug_state()
                )
            })?;
            ensure(f.sent_pkts_total > 0, || "nothing was sent".into())?;
            ensure(
                f.lost_pkts_total <= f.sent_pkts_total + f.retx_pkts_total,
                || "loss accounting exceeds transmissions".into(),
            )
        },
    );
}

/// Random-but-plausible fault plan drawn from the PR1 fault grid knobs.
fn random_plan(rng: &mut Rng, duration_s: f64) -> FaultPlan {
    let mut plan = FaultPlan {
        corrupt_prob: rng.range(0.0, 0.004),
        reorder_prob: rng.range(0.0, 0.02),
        reorder_delay_min: 2 * MILLIS,
        reorder_delay_max: 2 * MILLIS + (rng.below(8) as u64 + 1) * MILLIS,
        duplicate_prob: rng.range(0.0, 0.01),
        jitter_spike_prob: rng.range(0.0, 0.005),
        jitter_spike_max: (rng.below(15) as u64 + 1) * MILLIS,
        ack_compression: if rng.uniform() < 0.5 { 500_000 } else { 0 },
        ..FaultPlan::default()
    };
    if rng.uniform() < 0.7 {
        plan.burst_loss = Some(GilbertElliott::mild());
    }
    if rng.uniform() < 0.5 {
        let start = rng.range(0.5, duration_s * 0.5);
        plan.blackouts = vec![(from_secs(start), from_secs(start + 0.3))];
    }
    if rng.uniform() < 0.5 {
        plan.flaps = Some(FlapPlan {
            up_mean_s: 3.0,
            down_mean_s: 0.05,
        });
    }
    plan
}

#[derive(Default)]
struct TickTimes(Vec<Vec<u64>>);
impl Monitor for TickTimes {
    fn on_tick(&mut self, flow_idx: usize, _v: &SocketView, t: &TickRecord) {
        if self.0.len() <= flow_idx {
            self.0.resize(flow_idx + 1, Vec::new());
        }
        self.0[flow_idx].push(t.now);
    }
}

/// Level 2: whole-simulation invariants under the randomized fault grid —
/// monitor timestamps strictly monotone per flow, the flow survives
/// (delivers data), and loss never exceeds what was actually transmitted.
#[test]
fn prop_sim_survives_fault_grid_with_monotone_ticks() {
    forall(
        "sim fault-grid invariants",
        PropConfig::new(8, 0x5117),
        |rng| {
            let duration_s = 3.0 + rng.range(0.0, 1.0);
            let mbps = 12.0 + rng.range(0.0, 20.0);
            let mut cfg = SimConfig::new(
                LinkModel::Constant { mbps },
                120_000,
                20.0 + rng.range(0.0, 40.0),
                from_secs(duration_s),
            )
            .with_faults(random_plan(rng, duration_s));
            cfg.seed = rng.next_u64();
            let window = 8.0 + rng.below(32) as f64;
            let mut sim = Simulation::new(
                cfg,
                vec![FlowConfig::at_start(Box::new(FixedWindow(window)))],
            );
            let mut ticks = TickTimes::default();
            let stats = sim.run(&mut ticks).remove(0);

            for (i, times) in ticks.0.iter().enumerate() {
                ensure(times.windows(2).all(|w| w[0] < w[1]), || {
                    format!("flow {i}: tick timestamps not strictly monotone")
                })?;
            }
            ensure(stats.delivered_bytes > 0, || {
                format!("flow did not survive the fault plan: {stats:?}")
            })?;
            ensure(stats.sent_pkts > 0, || "nothing sent".into())?;
            ensure(stats.lost_pkts <= stats.sent_pkts + stats.retx_pkts, || {
                format!(
                    "loss accounting exceeds transmissions: lost {} sent {} retx {}",
                    stats.lost_pkts, stats.sent_pkts, stats.retx_pkts
                )
            })
        },
    );
}
