//! Invariants the transport must hold under adversarial network conditions:
//! sequence-space conservation under loss/duplication/reordering, and
//! bit-identical replay of faulty runs from the same seed.

use sage_netsim::faults::{FaultPlan, FlapPlan, GilbertElliott};
use sage_netsim::link::LinkModel;
use sage_netsim::packet::Packet;
use sage_netsim::time::{from_secs, Nanos, MILLIS};
use sage_transport::sim::{Monitor, NullMonitor, TickRecord};
use sage_transport::{
    AckEvent, CongestionControl, Flow, FlowConfig, SimConfig, Simulation, SocketView,
};

struct FixedWindow(f64);
impl CongestionControl for FixedWindow {
    fn name(&self) -> &'static str {
        "fixed"
    }
    fn on_ack(&mut self, _a: &AckEvent, _s: &SocketView) {}
    fn on_congestion_event(&mut self, _n: Nanos, _s: &SocketView) {}
    fn on_rto(&mut self, _n: Nanos, _s: &SocketView) {}
    fn cwnd_pkts(&self) -> f64 {
        self.0
    }
}

/// Conservation: drive a flow through a hostile channel that drops,
/// duplicates and reorders packets. Whatever the channel does, every
/// sequence number the sender produced must end up either cumulatively
/// acknowledged or written off as lost — never silently leaked.
#[test]
fn conservation_under_dup_reorder_loss() {
    for seed in [1u64, 7, 42, 1234] {
        let mut rng = sage_util::Rng::new(seed);
        let mut f = Flow::new(0, Box::new(FixedWindow(8.0)), 0, None);
        f.active = true;
        f.max_consecutive_rtos = 4; // let the abort path participate too

        // (delivery_time, packet) pairs still in the channel.
        let mut channel: Vec<(Nanos, Packet)> = Vec::new();
        let mut now: Nanos = 0;
        let step = MILLIS;
        let send_phase = 4000;
        let mut iters = 0;
        loop {
            iters += 1;
            assert!(
                iters < 60_000,
                "conservation loop failed to converge: {}",
                f.debug_state()
            );
            now += step;
            let sending = iters < send_phase;
            // Sender: transmit while the window (or a pending retransmit
            // during the drain phase) allows.
            while (sending && f.window_open()) || (f.has_retransmit() && f.pipe_pkts() == 0) {
                let pkt = f.make_packet(now);
                f.ensure_rto(now);
                let r = rng.uniform();
                if r < 0.1 {
                    continue; // dropped on the wire
                }
                let delay = 5 * MILLIS + (rng.uniform() * 40.0 * MILLIS as f64) as Nanos;
                channel.push((now + delay, pkt));
                if r > 0.95 {
                    channel.push((now + delay * 2, pkt)); // duplicated
                }
            }
            // Channel: deliver everything due (in whatever order the delays
            // produced — this is the reordering).
            channel.sort_by_key(|&(t, _)| t);
            let due: Vec<Packet> = channel
                .iter()
                .filter(|&&(t, _)| t <= now)
                .map(|&(_, p)| p)
                .collect();
            channel.retain(|&(t, _)| t > now);
            for pkt in due {
                let ack = f.on_data(now, pkt);
                // ACK channel: 5% loss as well.
                if rng.uniform() < 0.95 {
                    f.on_ack(now, ack);
                }
            }
            // Timer.
            if let Some(d) = f.rto_deadline {
                if now >= d {
                    f.on_rto(now);
                }
            }
            if !sending && f.pipe_pkts() == 0 && !f.has_retransmit() && channel.is_empty() {
                break;
            }
        }
        // Every sequence number either cumulatively ACKed or counted lost.
        assert_eq!(
            f.snd_una(),
            f.next_seq(),
            "seed {seed}: unaccounted sequence numbers: {}",
            f.debug_state()
        );
        assert!(f.sent_pkts_total > 0);
        assert!(
            f.lost_pkts_total <= f.sent_pkts_total + f.retx_pkts_total,
            "seed {seed}: loss accounting exceeds transmissions"
        );
    }
}

fn hostile_plan() -> FaultPlan {
    FaultPlan {
        burst_loss: Some(GilbertElliott::mild()),
        corrupt_prob: 0.002,
        reorder_prob: 0.01,
        reorder_delay_min: 2 * MILLIS,
        reorder_delay_max: 10 * MILLIS,
        duplicate_prob: 0.005,
        blackouts: vec![(from_secs(2.0), from_secs(2.3))],
        flaps: Some(FlapPlan {
            up_mean_s: 3.0,
            down_mean_s: 0.05,
        }),
        jitter_spike_prob: 0.003,
        jitter_spike_max: 15 * MILLIS,
        ack_compression: 500_000,
    }
}

#[derive(Default)]
struct Trajectory(Vec<(u64, u64, u64)>);
impl Monitor for Trajectory {
    fn on_tick(&mut self, _i: usize, v: &SocketView, t: &TickRecord) {
        self.0
            .push((t.now, t.goodput_bps as u64, (v.cwnd_pkts * 1e6) as u64));
    }
}

/// Replaying a faulty run from the same seed must reproduce the trajectory
/// bit for bit — fault injection is part of the deterministic event stream.
#[test]
fn faulty_run_replay_is_bit_identical() {
    let run = || {
        let cfg = SimConfig::new(
            LinkModel::Constant { mbps: 24.0 },
            120_000,
            40.0,
            from_secs(6.0),
        )
        .with_faults(hostile_plan());
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(FixedWindow(32.0)))]);
        let mut traj = Trajectory::default();
        let stats = sim.run(&mut traj).remove(0);
        (
            traj.0,
            stats.delivered_bytes,
            stats.lost_pkts,
            sim.fault_stats(),
        )
    };
    let (ta, da, la, fa) = run();
    let (tb, db, lb, fb) = run();
    assert_eq!(ta.len(), tb.len());
    assert_eq!(
        ta, tb,
        "trajectories diverged between identical seeded runs"
    );
    assert_eq!(da, db);
    assert_eq!(la, lb);
    assert_eq!(fa, fb);
    assert!(
        fa.total_dropped() > 0,
        "hostile plan should have injected drops"
    );
}

/// A different seed must actually change a faulty run (the injector draws
/// from the run seed, not a global constant).
#[test]
fn faulty_run_differs_across_seeds() {
    let run = |seed: u64| {
        let mut cfg = SimConfig::new(
            LinkModel::Constant { mbps: 24.0 },
            120_000,
            40.0,
            from_secs(4.0),
        )
        .with_faults(hostile_plan());
        cfg.seed = seed;
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(FixedWindow(32.0)))]);
        let stats = sim.run(&mut NullMonitor).remove(0);
        (stats.delivered_bytes, sim.fault_stats())
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a, b, "different seeds should perturb a faulty run");
}

/// The transport must survive a hard blackout: lose throughput during the
/// outage, then recover and keep delivering afterwards.
#[test]
fn flow_survives_blackout_and_recovers() {
    let plan = FaultPlan {
        blackouts: vec![(from_secs(3.0), from_secs(4.0))],
        ..FaultPlan::default()
    };
    let cfg = SimConfig::new(
        LinkModel::Constant { mbps: 24.0 },
        120_000,
        40.0,
        from_secs(10.0),
    )
    .with_faults(plan);

    #[derive(Default)]
    struct PhaseBytes {
        during: u64,
        after: u64,
    }
    impl Monitor for PhaseBytes {
        fn on_tick(&mut self, _i: usize, _v: &SocketView, t: &TickRecord) {
            let bits = t.goodput_bps / 100.0; // 10 ms ticks
            if t.now >= from_secs(3.0) && t.now < from_secs(4.0) {
                self.during += bits as u64;
            } else if t.now >= from_secs(5.0) {
                self.after += bits as u64;
            }
        }
    }
    let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(FixedWindow(32.0)))]);
    let mut phases = PhaseBytes::default();
    let stats = sim.run(&mut phases).remove(0);
    assert!(stats.delivered_bytes > 0);
    assert!(
        phases.after > phases.during.max(1) * 5,
        "no recovery after blackout: during={} after={}",
        phases.during,
        phases.after
    );
    assert!(sim.fault_stats().dropped_blackout > 0);
}
