//! Property-style end-to-end invariants of the transport over randomised
//! network conditions: conservation laws that must hold for any environment.
//! Driven by the workspace's own deterministic RNG (no external
//! property-testing framework: the build must work offline).

use sage_netsim::link::LinkModel;
use sage_netsim::time::from_secs;
use sage_transport::sim::NullMonitor;
use sage_transport::{CongestionControl, FlowConfig, SimConfig, Simulation, SocketView};
use sage_util::Rng;

/// A window that follows a fixed pseudo-random walk — exercises arbitrary
/// cwnd dynamics through the sender machinery.
struct RandomWalkCc {
    cwnd: f64,
    state: u64,
}
impl CongestionControl for RandomWalkCc {
    fn name(&self) -> &'static str {
        "randomwalk"
    }
    fn on_ack(&mut self, _a: &sage_transport::AckEvent, _s: &SocketView) {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let r = (self.state >> 33) as f64 / (1u64 << 31) as f64; // [0,1)
        self.cwnd = (self.cwnd * (0.9 + 0.25 * r)).clamp(2.0, 500.0);
    }
    fn on_congestion_event(&mut self, _n: u64, _s: &SocketView) {
        self.cwnd = (self.cwnd / 2.0).max(2.0);
    }
    fn on_rto(&mut self, _n: u64, _s: &SocketView) {
        self.cwnd = 2.0;
    }
    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }
}

#[test]
fn conservation_under_random_conditions() {
    let mut rng = Rng::new(0xAA33);
    for _ in 0..12 {
        let mbps = rng.range(2.0, 100.0);
        let rtt = rng.range(5.0, 150.0);
        let buf_mult = rng.range(0.25, 8.0);
        let loss = rng.range(0.0, 0.05);
        let walk_seed = rng.next_u64();
        let bdp = (mbps * 1e6 / 8.0 * rtt / 1e3).max(4500.0);
        let mut cfg = SimConfig::new(
            LinkModel::Constant { mbps },
            (bdp * buf_mult) as u64,
            rtt,
            from_secs(4.0),
        );
        cfg.random_loss = loss;
        cfg.seed = walk_seed;
        let cca = RandomWalkCc {
            cwnd: 10.0,
            state: walk_seed | 1,
        };
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(cca))]);
        let stats = sim.run(&mut NullMonitor).remove(0);

        // Conservation: the receiver cannot get more than was sent.
        assert!(stats.delivered_bytes <= (stats.sent_pkts + stats.retx_pkts) * 1500);
        // Goodput cannot exceed the link rate (small tolerance for the
        // final in-flight burst).
        assert!(stats.avg_goodput_mbps <= mbps * 1.05 + 0.5);
        // One-way delay at least half the propagation delay.
        if stats.delivered_bytes > 0 {
            assert!(stats.avg_owd_ms >= rtt / 2.0 - 0.5);
        }
        // Forward progress unless the loss rate is absurd.
        if loss < 0.02 {
            assert!(stats.delivered_bytes > 0);
        }
    }
}
