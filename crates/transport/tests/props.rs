//! Property-based end-to-end invariants of the transport over randomised
//! network conditions: conservation laws that must hold for any environment.

use proptest::prelude::*;
use sage_netsim::link::LinkModel;
use sage_netsim::time::from_secs;
use sage_transport::sim::NullMonitor;
use sage_transport::{CongestionControl, FlowConfig, SimConfig, Simulation, SocketView};

/// A window that follows a fixed pseudo-random walk — exercises arbitrary
/// cwnd dynamics through the sender machinery.
struct RandomWalkCc {
    cwnd: f64,
    state: u64,
}
impl CongestionControl for RandomWalkCc {
    fn name(&self) -> &'static str {
        "randomwalk"
    }
    fn on_ack(&mut self, _a: &sage_transport::AckEvent, _s: &SocketView) {
        self.state = self.state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let r = (self.state >> 33) as f64 / (1u64 << 31) as f64; // [0,1)
        self.cwnd = (self.cwnd * (0.9 + 0.25 * r)).clamp(2.0, 500.0);
    }
    fn on_congestion_event(&mut self, _n: u64, _s: &SocketView) {
        self.cwnd = (self.cwnd / 2.0).max(2.0);
    }
    fn on_rto(&mut self, _n: u64, _s: &SocketView) {
        self.cwnd = 2.0;
    }
    fn cwnd_pkts(&self) -> f64 {
        self.cwnd
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn conservation_under_random_conditions(
        mbps in 2.0f64..100.0,
        rtt in 5.0f64..150.0,
        buf_mult in 0.25f64..8.0,
        loss in 0.0f64..0.05,
        walk_seed in any::<u64>(),
    ) {
        let bdp = (mbps * 1e6 / 8.0 * rtt / 1e3).max(4500.0);
        let mut cfg = SimConfig::new(
            LinkModel::Constant { mbps },
            (bdp * buf_mult) as u64,
            rtt,
            from_secs(4.0),
        );
        cfg.random_loss = loss;
        cfg.seed = walk_seed;
        let cca = RandomWalkCc { cwnd: 10.0, state: walk_seed | 1 };
        let mut sim = Simulation::new(cfg, vec![FlowConfig::at_start(Box::new(cca))]);
        let stats = sim.run(&mut NullMonitor).remove(0);

        // Conservation: the receiver cannot get more than was sent.
        prop_assert!(stats.delivered_bytes <= (stats.sent_pkts + stats.retx_pkts) * 1500);
        // Goodput cannot exceed the link rate (small tolerance for the
        // final in-flight burst).
        prop_assert!(stats.avg_goodput_mbps <= mbps * 1.05 + 0.5);
        // One-way delay at least half the propagation delay.
        if stats.delivered_bytes > 0 {
            prop_assert!(stats.avg_owd_ms >= rtt / 2.0 - 0.5);
        }
        // Forward progress unless the loss rate is absurd.
        if loss < 0.02 {
            prop_assert!(stats.delivered_bytes > 0);
        }
    }
}
